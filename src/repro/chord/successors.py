"""Successor lists for Chord fault tolerance.

A single successor pointer is enough for correctness in a stable ring but
breaks as soon as the successor fails.  Like the original Chord paper (and
Open Chord, which the P2P-LTR prototype builds on), every node therefore
maintains a short list of the ``k`` nearest successors and falls back to the
next live entry when the head fails.  The paper's *Master-key-Succ* and
*Log-Peer-Succ* roles are precisely "the next entry of the successor list".
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from .refs import NodeRef


class SuccessorList:
    """Ordered list of a node's nearest known successors."""

    def __init__(self, owner_id: int, capacity: int = 4) -> None:
        if capacity < 1:
            raise ValueError(f"successor list capacity must be >= 1, got {capacity}")
        self.owner_id = owner_id
        self.capacity = capacity
        self._entries: list[NodeRef] = []

    # -- queries ------------------------------------------------------------

    @property
    def head(self) -> Optional[NodeRef]:
        """The immediate successor, or ``None`` if the list is empty."""
        return self._entries[0] if self._entries else None

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[NodeRef]:
        return iter(self._entries)

    def __contains__(self, node: NodeRef) -> bool:
        return node in self._entries

    def entries(self) -> list[NodeRef]:
        """A copy of the current entries, nearest successor first."""
        return list(self._entries)

    def second(self) -> Optional[NodeRef]:
        """The backup successor (the paper's *-Succ* role), if known."""
        return self._entries[1] if len(self._entries) > 1 else None

    # -- updates ------------------------------------------------------------

    def replace(self, entries: Iterable[NodeRef]) -> None:
        """Replace the whole list, de-duplicating and trimming to capacity."""
        seen: dict[NodeRef, None] = {}
        for entry in entries:
            seen.setdefault(entry)
        self._entries = list(seen)[: self.capacity]

    def adopt(self, successor: NodeRef, their_list: Iterable[NodeRef]) -> None:
        """Set ``successor`` as head and extend with the successor's own list.

        This is the standard successor-list maintenance rule: my list is my
        successor followed by the first ``k - 1`` entries of its list
        (excluding myself, which would short-circuit the ring).
        """
        combined: list[NodeRef] = [successor]
        for entry in their_list:
            if entry == successor or entry.node_id == self.owner_id:
                continue
            combined.append(entry)
        self.replace(combined)

    def remove(self, node: NodeRef) -> None:
        """Drop ``node`` from the list (e.g. after a failed liveness check)."""
        self._entries = [entry for entry in self._entries if entry != node]

    def promote_next(self) -> Optional[NodeRef]:
        """Drop the head (it failed) and return the new head, if any."""
        if self._entries:
            self._entries.pop(0)
        return self.head
