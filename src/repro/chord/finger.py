"""The Chord finger table.

Finger ``i`` of node ``n`` points at ``successor(n + 2**i)``; the table
provides the O(log N) routing shortcut used by ``closest_preceding_node``.
The table degrades gracefully: entries may be ``None`` (not yet fixed) or
stale (pointing at departed peers); the owning node repairs them with its
periodic ``fix_fingers`` task and skips entries that fail a liveness check.
"""

from __future__ import annotations

from typing import Iterator, Optional

from .idspace import finger_start
from .refs import NodeRef


class FingerTable:
    """Routing shortcuts of a single Chord node."""

    def __init__(self, node_id: int, bits: int) -> None:
        if bits <= 0:
            raise ValueError(f"bits must be positive, got {bits}")
        self.node_id = node_id
        self.bits = bits
        self._entries: list[Optional[NodeRef]] = [None] * bits

    def __len__(self) -> int:
        return self.bits

    def __iter__(self) -> Iterator[Optional[NodeRef]]:
        return iter(self._entries)

    def start(self, index: int) -> int:
        """The identifier this finger should track (``node_id + 2**index``)."""
        return finger_start(self.node_id, index, self.bits)

    def get(self, index: int) -> Optional[NodeRef]:
        """Current entry for finger ``index`` (may be ``None``)."""
        return self._entries[index]

    def update(self, index: int, node: Optional[NodeRef]) -> None:
        """Set finger ``index`` to ``node`` (or clear it with ``None``)."""
        if not 0 <= index < self.bits:
            raise ValueError(f"finger index {index} out of range")
        self._entries[index] = node

    def remove_node(self, node: NodeRef) -> int:
        """Clear every entry pointing at ``node``; returns how many were cleared."""
        cleared = 0
        for index, entry in enumerate(self._entries):
            if entry == node:
                self._entries[index] = None
                cleared += 1
        return cleared

    def closest_preceding(self, target_id: int, exclude: Optional[set[NodeRef]] = None) -> Optional[NodeRef]:
        """Best known node strictly between this node and ``target_id``.

        Scans fingers from the farthest to the nearest, the core of Chord's
        logarithmic lookup.  ``exclude`` lets the caller skip refs it has
        already found unresponsive during the current lookup.
        """
        node_id = self.node_id
        # ``in_interval_open`` inlined: this scan runs for every routed
        # hop and the call overhead dominated it.  The wrapped comparison
        # subsumes the degenerate ``node_id == target_id`` case (it reduces
        # to ``entry_id != node_id``, exactly the whole-ring-except-self
        # convention).
        if node_id < target_id:
            for entry in reversed(self._entries):
                if entry is None or (exclude is not None and entry in exclude):
                    continue
                if node_id < entry.node_id < target_id:
                    return entry
        else:
            for entry in reversed(self._entries):
                if entry is None or (exclude is not None and entry in exclude):
                    continue
                entry_id = entry.node_id
                if entry_id > node_id or entry_id < target_id:
                    return entry
        return None

    def known_nodes(self) -> list[NodeRef]:
        """Distinct, non-empty finger entries (useful for diagnostics)."""
        seen: dict[NodeRef, None] = {}
        for entry in self._entries:
            if entry is not None:
                seen.setdefault(entry)
        return list(seen)

    def fill_with(self, node: NodeRef) -> None:
        """Point every finger at ``node`` (bootstrap state for a new ring)."""
        for index in range(self.bits):
            self._entries[index] = node
