"""The nemesis: replays a :class:`~repro.faults.plan.FaultPlan` at runtime.

The injector binds a plan to a running :class:`~repro.core.LtrSystem` and
schedules every event through the runtime's ``call_later`` timer facility.
On the simulation backend the timers fire at exact virtual times, so a plan
plus a seed reproduces the identical fault interleaving run after run; on
the asyncio backend the same timers are wall-clock and the plan is
best-effort (actions fire at approximately their offsets).

Actions run *inside* timer callbacks, so they never drive the runtime
themselves: crashes and partitions are direct state changes, while joins,
leaves, restarts and re-joins are spawned as background processes that the
advancing run executes.  After each action the system's fault observers
(:meth:`~repro.core.LtrSystem.notify_fault`) are notified — that is the
hook the convergence checker (:mod:`repro.check`) snapshots on.
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import ConfigurationError, ReproError
from .plan import FaultEvent, FaultPlan


class Nemesis:
    """Injects one fault plan into one running system."""

    def __init__(self, system, plan: FaultPlan, *, strict: bool = False) -> None:
        self.system = system
        self.plan = plan
        #: When ``True``, an action failure propagates out of the run; by
        #: default it is recorded in :attr:`errors` and the plan continues
        #: (a crash racing a departure is part of the chaos, not a bug).
        self.strict = strict
        self.started_at: Optional[float] = None
        self.applied: list[tuple[float, str]] = []
        self.errors: list[tuple[float, str, str]] = []

    # ------------------------------------------------------------ surface --
    # The helper surface fault actions program against.

    @property
    def runtime(self):
        return self.system.runtime

    @property
    def ring(self):
        return self.system.ring

    @property
    def network(self):
        return self.system.network

    def node(self, name: str):
        """The Chord node object of ``name`` (alive or not)."""
        return self.ring.node(name)

    def live_gateway(self, *, exclude: frozenset | set = frozenset()):
        """The first live node (ring order) outside ``exclude``; ``None`` if none.

        Ring order makes the choice deterministic for a given membership,
        which keeps replayed plans byte-identical.
        """
        for node in self.ring.live_nodes():
            if node.address.name not in exclude:
                return node
        return None

    def clear_route_caches(self) -> None:
        """Drop every node's cached routes (membership-shaped fault)."""
        self.ring.clear_route_caches()

    def forget_user(self, name: str) -> None:
        """Detach the user peer running on ``name`` (its host is going away)."""
        self.system.forget_user(name)

    def spawn(self, generator, *, name: str):
        """Run a protocol process in the background of the advancing run.

        The process is supervised: a failure inside it (e.g. a re-join whose
        gateway vanished mid-handshake) is recorded in :attr:`errors` under
        the spawning action's name — the same contract as synchronous action
        failures — instead of disappearing into the runtime's crashed-process
        bookkeeping.  Under ``strict=True`` the failure is re-raised inside
        the process after being recorded.
        """
        return self.runtime.process(self._supervise(generator, name), name=name)

    def _supervise(self, generator, name: str):
        try:
            result = yield from generator
            return result
        except ReproError as error:
            self.errors.append((self.runtime.now, name, str(error)))
            if self.strict:
                raise

    # ---------------------------------------------------------- execution --

    def start(self, *, at: float = 0.0) -> "Nemesis":
        """Schedule the whole plan, offset ``at`` seconds from now."""
        if self.started_at is not None:
            raise ConfigurationError("this nemesis has already been started")
        if at < 0:
            raise ConfigurationError(f"start offset must be >= 0, got {at}")
        self.started_at = self.runtime.now + at
        for event in self.plan.events:
            self.runtime.call_later(at + event.at, self._fire, event)
        return self

    def _fire(self, event: FaultEvent) -> None:
        label = event.action.describe()
        try:
            event.action.apply(self)
            self.applied.append((self.runtime.now, label))
        except ReproError as error:
            if self.strict:
                raise
            self.errors.append((self.runtime.now, label, str(error)))
        self.system.notify_fault(
            label, {"time": self.runtime.now, "kind": event.action.kind}
        )

    # ------------------------------------------------------------- report --

    def record(self) -> dict[str, Any]:
        """Deterministic record of what was injected (for artifacts/tests)."""
        return {
            "started_at": self.started_at,
            "plan": self.plan.describe(),
            "applied": [list(entry) for entry in self.applied],
            "errors": [list(entry) for entry in self.errors],
        }
