"""Differential test harness for the checkpointed retrieval fast path.

Every run builds *two* byte-identical deployments from the same seed — one
with the checkpointing subsystem enabled, one replaying the full patch log
(the paper's Procedure 3) — drives the identical seeded multi-writer
editing history against both, and then lets a peer that never synchronised
catch up cold on each.  The differential property:

* the fast-path replica converges to **byte-identical text and
  ``applied_ts``** as the full-replay replica,
* while retrieving strictly fewer patches,
* and local tentative edits (a pending patch, or a staged commit batch)
  survive the snapshot jump: they remain committable and every paper
  invariant (dense timestamps, prefix-complete log, OT convergence — see
  ``test_invariants.py``) holds on both deployments afterwards.

The sweep covers >= 25 seeds for both the unbatched and the batched commit
pipeline, rotating the cold peer's local-edit mode (none / pending /
staged batch) across seeds.
"""

import pytest

from repro.core import LtrConfig, LtrSystem
from repro.net import ConstantLatency
from repro.sim.rng import RandomStreams

from test_invariants import assert_system_invariants

KEY = "xwiki:diff"
PEERS = 6
INTERVAL = 4
SEEDS = range(25)


def build_system(seed: int, *, batched: bool, checkpointing: bool) -> LtrSystem:
    config = LtrConfig(
        batch_enabled=batched,
        batch_max_edits=3,
        checkpoint_enabled=checkpointing,
        checkpoint_interval=INTERVAL,
        checkpoint_retention=2,
        grouped_fetch=checkpointing,
    )
    system = LtrSystem(ltr_config=config, seed=seed, latency=ConstantLatency(0.004))
    system.bootstrap(PEERS)
    return system


def drive_history(system: LtrSystem, *, seed: int, batched: bool, steps: int) -> None:
    """The identical seeded two-writer editing run, on either deployment."""
    rng = RandomStreams(seed).stream("diff-history")
    writers = system.peer_names()[:2]
    for step in range(steps):
        writer = rng.choice(writers)
        lines = [f"{KEY} l{line} s{step} by {writer}"
                 for line in range(rng.randint(1, 4))]
        text = "\n".join(lines)
        if batched:
            system.stage(writer, KEY, text)
        else:
            system.edit_and_commit(writer, KEY, text)
    if batched:
        for writer in writers:
            system.flush(writer, KEY)
    system.run_for(1.0)  # let checkpoint/log replication settle


def add_cold_local_edits(system: LtrSystem, cold: str, *, mode: str) -> None:
    """Give the cold peer local tentative state before it synchronises."""
    user = system.user(cold)
    if mode == "pending":
        user.edit(KEY, f"local draft by {cold}\nsecond local line")
    elif mode == "staged":
        user.stage(KEY, f"staged one by {cold}")
        user.stage(KEY, f"staged one by {cold}\nstaged two")


def run_differential(seed: int, *, batched: bool, mode: str) -> None:
    steps = 10 + (seed % 5)  # history varies per seed, always > INTERVAL
    fast = build_system(seed, batched=batched, checkpointing=True)
    full = build_system(seed, batched=batched, checkpointing=False)
    for system in (fast, full):
        drive_history(system, seed=seed, batched=batched, steps=steps)
    assert fast.last_ts(KEY) == full.last_ts(KEY) == steps

    cold = fast.peer_names()[2]
    assert cold == full.peer_names()[2]
    for system in (fast, full):
        add_cold_local_edits(system, cold, mode=mode)

    fast_result = fast.sync(cold, KEY)
    full_result = full.sync(cold, KEY)

    # The fast path really ran: it bootstrapped from a snapshot and fetched
    # strictly fewer patches than the full replay.
    assert fast_result.used_checkpoint, f"seed {seed}: no checkpoint used"
    assert not full_result.used_checkpoint
    assert fast_result.retrieved_patches < full_result.retrieved_patches
    assert full_result.retrieved_patches == steps

    # The differential property: byte-identical validated state.
    fast_replica = fast.user(cold).document(KEY)
    full_replica = full.user(cold).document(KEY)
    assert fast_replica.applied_ts == full_replica.applied_ts == steps
    assert fast_replica.lines == full_replica.lines

    # Local tentative edits survived the jump and remain committable.
    if mode == "pending":
        for system in (fast, full):
            assert system.user(cold).has_pending(KEY)
            commit = system.commit(cold, KEY)
            assert commit is not None and commit.ts == steps + 1
    elif mode == "staged":
        for system in (fast, full):
            batch = system.user(cold).batch(KEY)
            assert batch is not None and len(batch) == 2
            flush = system.flush(cold, KEY)
            assert flush is not None and flush.first_ts == steps + 1
    assert fast.last_ts(KEY) == full.last_ts(KEY)

    # And every paper invariant holds on both deployments afterwards
    # (including the checkpoint-placement invariant on the fast one).
    assert_system_invariants(fast, [KEY])
    assert_system_invariants(full, [KEY])


def mode_for(seed: int, batched: bool) -> str:
    modes = ("none", "pending", "staged") if batched else ("none", "pending")
    return modes[seed % len(modes)]


@pytest.mark.parametrize("batched", [False, True], ids=["unbatched", "batched"])
@pytest.mark.parametrize("seed", [2, 13])
def test_checkpoint_sync_matches_full_replay_smoke(seed, batched):
    """Quick differential check (always runs; the 25-seed sweep is `slow`)."""
    run_differential(seed, batched=batched, mode=mode_for(seed, batched))


@pytest.mark.parametrize("mode", ["pending", "staged"])
def test_checkpoint_sync_preserves_local_edits_every_mode(mode):
    """Each local-edit mode explicitly, on the batched pipeline."""
    run_differential(7, batched=True, mode=mode)


@pytest.mark.slow
@pytest.mark.parametrize("batched", [False, True], ids=["unbatched", "batched"])
@pytest.mark.parametrize("seed", list(SEEDS))
def test_checkpoint_sync_matches_full_replay(seed, batched):
    """The acceptance sweep: >= 25 seeds per commit pipeline."""
    run_differential(seed, batched=batched, mode=mode_for(seed, batched))
