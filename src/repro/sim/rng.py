"""Deterministic, named random-number streams.

Experiments need independent sources of randomness for independent concerns
(network latency, workload generation, churn schedules, hash salt choices)
so that changing one knob — say, the churn rate — does not perturb the
random draws of another.  :class:`RandomStreams` hands out one
:class:`random.Random` instance per *stream name*, each seeded
deterministically from the master seed and the name.

Under the deterministic simulation backend a single generator per name is
exactly right: one process runs at a time, so draws from a named stream
form one reproducible sequence.  Under a concurrent backend (the asyncio
runtime) two tasks hitting the same named stream would interleave their
draws nondeterministically *within* that stream.  A family created with a
``scope_provider`` therefore resolves every ``stream(name)`` call to a
scope-local sub-stream (``name#<scope>``): each task/process draws from its
own deterministic sequence and draws can never interleave across scopes.
Stream creation itself is guarded by a lock so the family is safe to share
between threads.
"""

from __future__ import annotations

import hashlib
import random
import threading
from typing import Callable, Dict, Iterator, Optional


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a stream ``name``.

    The derivation uses SHA-256 so that distinct names give statistically
    independent seeds, and is stable across Python versions and processes
    (unlike the built-in ``hash``).
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A family of independently seeded :class:`random.Random` generators.

    Parameters
    ----------
    master_seed:
        Seed every stream's child seed is derived from.
    scope_provider:
        Optional callable returning the current *scope label* (or ``None``).
        When it returns a label, :meth:`stream` transparently resolves to
        the sub-stream ``f"{name}#{label}"`` — the task-local sub-streams
        that keep concurrently running asyncio processes from interleaving
        draws within one named stream.  The default (``None``) preserves
        the historical single-generator-per-name behaviour bit for bit.
    """

    def __init__(
        self,
        master_seed: int = 0,
        *,
        scope_provider: Optional[Callable[[], Optional[str]]] = None,
    ) -> None:
        self.master_seed = master_seed
        self.scope_provider = scope_provider
        self._streams: Dict[str, random.Random] = {}
        self._lock = threading.Lock()

    def _resolve(self, name: str) -> str:
        if self.scope_provider is None:
            return name
        scope = self.scope_provider()
        if not scope:
            return name
        return f"{name}#{scope}"

    def stream(self, name: str) -> random.Random:
        """Return the generator for ``name``, creating it on first use.

        With a ``scope_provider`` the effective stream is scope-local (see
        the class docstring), so two concurrent tasks asking for the same
        ``name`` receive independent generators.
        """
        resolved = self._resolve(name)
        with self._lock:
            generator = self._streams.get(resolved)
            if generator is None:
                generator = random.Random(derive_seed(self.master_seed, resolved))
                self._streams[resolved] = generator
            return generator

    def __getitem__(self, name: str) -> random.Random:
        return self.stream(name)

    def __contains__(self, name: str) -> bool:
        resolved = self._resolve(name)
        with self._lock:
            return resolved in self._streams

    def __iter__(self) -> Iterator[str]:
        with self._lock:
            return iter(list(self._streams))

    def names(self) -> list[str]:
        """Names of all (resolved) streams created so far."""
        with self._lock:
            return sorted(self._streams)

    def reset(self) -> None:
        """Forget all streams; subsequent calls re-create them from scratch."""
        with self._lock:
            self._streams.clear()

    def spawn(self, name: str) -> "RandomStreams":
        """Create a child family whose master seed is derived from ``name``.

        Useful when a subsystem (e.g. one peer) wants its own namespace of
        streams without risking collisions with other subsystems.
        """
        return RandomStreams(
            derive_seed(self.master_seed, name), scope_provider=self.scope_provider
        )
