"""Churn workloads: scripted peer joins, departures and failures.

The paper's prototype GUI lets the demonstrator "add/remove peers to/from
the system" and "provoke failures"; these generators produce equivalent
scripted schedules (:class:`~repro.net.failures.FailureSchedule`) that the
experiment harness replays during an editing workload.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from ..net import FailureSchedule


@dataclass(frozen=True)
class ChurnProfile:
    """Rates describing how dynamic the peer population is.

    Rates are in events per simulated second over the whole system; the
    classic "session time" view can be obtained as ``peer_count / rate``.
    """

    leave_rate: float = 0.0
    crash_rate: float = 0.0
    join_rate: float = 0.0

    def total_rate(self) -> float:
        """Aggregate event rate."""
        return self.leave_rate + self.crash_rate + self.join_rate

    def validate(self) -> None:
        """Raise ``ValueError`` on negative rates."""
        for name in ("leave_rate", "crash_rate", "join_rate"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")


#: Profiles matching the qualitative settings of the demonstration.
PROFILES = {
    "stable": ChurnProfile(),
    "gentle": ChurnProfile(leave_rate=0.02, crash_rate=0.01, join_rate=0.02),
    "aggressive": ChurnProfile(leave_rate=0.08, crash_rate=0.06, join_rate=0.08),
}


def generate_churn_schedule(
    *,
    initial_peers: Sequence[str],
    duration: float,
    profile: ChurnProfile,
    seed: int = 0,
    protected: Sequence[str] = (),
    new_peer_prefix: str = "joiner",
) -> FailureSchedule:
    """Build a churn schedule over ``duration`` simulated seconds.

    Departures and crashes pick random currently-alive, unprotected peers;
    joins introduce fresh names (``joiner-0``, ``joiner-1``, ...).  The
    schedule never removes the last two peers so the ring always survives.
    """
    profile.validate()
    rng = random.Random(seed)
    schedule = FailureSchedule()
    alive = list(initial_peers)
    protected_set = set(protected)
    joined = 0
    total_rate = profile.total_rate()
    if total_rate <= 0 or duration <= 0:
        return schedule

    time = 0.0
    while True:
        time += rng.expovariate(total_rate)
        if time >= duration:
            break
        choice = rng.random() * total_rate
        if choice < profile.join_rate:
            name = f"{new_peer_prefix}-{joined}"
            joined += 1
            schedule.add(time, "join", name)
            alive.append(name)
            continue
        removable = [name for name in alive if name not in protected_set]
        if len(removable) <= 2:
            continue
        victim = rng.choice(removable)
        alive.remove(victim)
        if choice < profile.join_rate + profile.leave_rate:
            schedule.add(time, "leave", victim)
        else:
            schedule.add(time, "crash", victim)
    return schedule


def apply_churn_action(system, action: str, peer: str) -> None:
    """Apply one churn action to an :class:`~repro.core.LtrSystem`."""
    if action == "join":
        system.add_peer(peer)
    elif action == "leave":
        system.leave(peer)
    elif action == "crash":
        system.crash(peer)
    else:
        raise ValueError(f"unknown churn action {action!r}")
