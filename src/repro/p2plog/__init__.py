"""P2P-Log: the highly available, DHT-resident log of timestamped patches."""

from .auth import (
    author_key,
    canonical_bytes,
    sign_checkpoint,
    sign_commit,
    verify_checkpoint,
    verify_commit,
    verify_entry,
)
from .checkpoint import (
    CHECKPOINT_SALT_PREFIX,
    Checkpoint,
    make_checkpoint_index_key,
    make_checkpoint_key,
)
from .entry import LogEntry, make_log_key
from .log import P2PLogClient

__all__ = [
    "CHECKPOINT_SALT_PREFIX",
    "Checkpoint",
    "LogEntry",
    "P2PLogClient",
    "author_key",
    "canonical_bytes",
    "make_checkpoint_index_key",
    "make_checkpoint_key",
    "make_log_key",
    "sign_checkpoint",
    "sign_commit",
    "verify_checkpoint",
    "verify_commit",
    "verify_entry",
]
