"""Benchmark E8 — Chord substrate health: lookup correctness and hop counts.

P2P-LTR's correctness rests on the DHT resolving every key to the right
responsible peer; its response times rest on lookups taking O(log N) hops.
This benchmark validates the Open Chord substitute on both counts across
ring sizes.

Run with ``pytest benchmarks/bench_chord_lookup.py --benchmark-only -s``.
"""

from repro.experiments import run_experiment


def test_benchmark_chord_lookup(benchmark):
    """E8: lookups are correct and hop counts grow slowly with ring size."""
    run = benchmark.pedantic(
        lambda: run_experiment(
            "E8",
            quick=True,
            overrides={"peer_counts": (8, 16, 32, 64), "lookups": 40},
        ),
        rounds=1,
        iterations=1,
    )
    table = run.table
    print()
    print(table.render())

    rows = [dict(zip(table.columns, row)) for row in table.rows]
    assert all(row["correct_fraction"] == 1.0 for row in rows)
    # Logarithmic growth: the 64-peer ring needs far fewer than 8x the hops
    # of the 8-peer ring.
    assert rows[-1]["mean_hops"] <= 4 * max(rows[0]["mean_hops"], 1.0)
    assert all(row["max_hops"] <= 64 for row in rows)
