"""Layering audit: the import DAG of ``src/repro`` is downward-only.

``DESIGN.md`` declares the layer map ("dependencies point strictly
downward; every layer is importable and testable on its own").  This test
extracts the actual intra-package import edges with :mod:`ast` and asserts
them against that map, so an upward import — in particular any module
above ``repro.runtime`` importing ``repro.sim`` directly, which would
re-couple the protocol stack to one execution backend — fails CI instead
of silently eroding the architecture.
"""

import ast
from pathlib import Path

import repro

SRC_ROOT = Path(repro.__file__).resolve().parent

#: DESIGN.md layer map: each top-level package (or module) of ``repro``
#: with the set of packages it is allowed to import.  Order is lowest
#: layer first; a package may only depend on what its row lists.
ALLOWED_DEPENDENCIES: dict[str, set[str]] = {
    "errors": set(),
    "sim": {"errors"},
    "runtime": {"errors", "sim"},                     # the only module allowed to see sim
    "ot": {"errors"},
    "storage": {"errors"},
    "net": {"errors", "runtime"},
    "chord": {"errors", "runtime", "net", "storage"},
    "dht": {"errors", "runtime", "net", "chord"},
    "kts": {"errors", "runtime", "net", "chord", "dht"},
    "p2plog": {"errors", "runtime", "net", "chord", "dht", "ot"},
    "core": {"errors", "runtime", "net", "chord", "dht", "kts", "p2plog", "ot", "storage"},
    "baselines": {"errors", "runtime", "net", "ot"},
    "app": {"errors", "runtime", "core", "ot"},
    "workloads": {"errors", "runtime", "net"},
    "metrics": {"errors", "runtime"},
    "faults": {"errors", "runtime", "net"},
    "check": {"errors", "runtime", "ot", "kts", "p2plog", "core"},
    "engine": {"errors", "runtime", "net", "chord", "core", "metrics", "faults"},
    "cluster": {"errors", "runtime", "net", "chord", "core", "faults"},
    "experiments": {
        "errors", "runtime", "net", "chord", "dht", "kts", "core",
        "baselines", "workloads", "metrics", "engine", "faults", "check",
        "cluster",
    },
}

#: Layers above the runtime abstraction: none of these may import
#: ``repro.sim`` — they program against ``repro.runtime`` instead.
ABOVE_RUNTIME = sorted(set(ALLOWED_DEPENDENCIES) - {"errors", "sim", "runtime"})


def iter_modules():
    """Yield ``(layer, path, ast tree)`` for every module in ``src/repro``."""
    for path in sorted(SRC_ROOT.rglob("*.py")):
        relative = path.relative_to(SRC_ROOT)
        layer = relative.parts[0] if len(relative.parts) > 1 else relative.stem
        if layer == "__init__":
            continue  # the package facade re-exports freely
        yield layer, path, ast.parse(path.read_text(), filename=str(path))


def imported_layers(layer: str, tree: ast.AST) -> set[str]:
    """Top-level ``repro`` packages imported by one module (excluding itself).

    Covers every spelling that can reach a sibling package: ``from ..x
    import y``, ``from .. import x``, ``from repro.x import y``,
    ``from repro import x`` and ``import repro.x``.
    """
    found: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if node.level == 2:
                if module:                            # from ..x import y
                    found.add(module.split(".")[0])
                else:                                 # from .. import x
                    found.update(alias.name.split(".")[0] for alias in node.names)
            elif node.level == 0:
                if module.startswith("repro."):       # from repro.x import y
                    found.add(module.split(".")[1])
                elif module == "repro":               # from repro import x
                    found.update(alias.name.split(".")[0] for alias in node.names)
        elif isinstance(node, ast.Import):
            for alias in node.names:                  # import repro.x
                if alias.name.startswith("repro."):
                    found.add(alias.name.split(".")[1])
    # ``from repro import LtrSystem``-style symbol imports surface the
    # symbol name here; keep only real packages (new packages are forced
    # into the map by test_layer_map_is_complete).
    found &= set(ALLOWED_DEPENDENCIES)
    found.discard(layer)
    return found


def test_layer_map_is_complete():
    """Every package in the tree has a row in the DESIGN.md layer map."""
    layers = {layer for layer, _path, _tree in iter_modules()}
    unmapped = layers - set(ALLOWED_DEPENDENCIES)
    assert not unmapped, (
        f"packages {sorted(unmapped)} have no layer-map entry; add them to "
        f"ALLOWED_DEPENDENCIES (and DESIGN.md) at the right depth"
    )


def test_imports_point_strictly_downward():
    """No module imports a layer its DESIGN.md row does not allow."""
    violations = []
    for layer, path, tree in iter_modules():
        allowed = ALLOWED_DEPENDENCIES.get(layer, set())
        for dependency in imported_layers(layer, tree) - allowed:
            violations.append(f"{path.relative_to(SRC_ROOT)}: {layer} -> {dependency}")
    assert not violations, "upward or sideways imports:\n" + "\n".join(sorted(violations))


def test_nothing_above_runtime_imports_sim():
    """The stack is backend-agnostic: only ``repro.runtime`` sees ``repro.sim``."""
    offenders = []
    for layer, path, tree in iter_modules():
        if layer in ("sim", "runtime"):
            continue
        if "sim" in imported_layers(layer, tree):
            offenders.append(str(path.relative_to(SRC_ROOT)))
    assert not offenders, (
        "modules above repro.runtime import repro.sim directly: "
        f"{offenders}; program against repro.runtime instead"
    )


def test_runtime_layer_is_the_backend_choke_point():
    """Sanity: the map itself says only runtime may depend on sim."""
    for layer, allowed in ALLOWED_DEPENDENCIES.items():
        if layer != "runtime":
            assert "sim" not in allowed, f"layer map grants {layer} access to sim"
