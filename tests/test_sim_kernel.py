"""Unit tests for the discrete-event simulation kernel (repro.sim)."""

import pytest

from repro.errors import (
    EventAlreadyTriggered,
    ProcessInterrupted,
    SimulationDeadlock,
    SimulationError,
)
from repro.sim import RandomStreams, Simulator, derive_seed


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0
    assert sim.processed_events == 0


def test_timeout_advances_clock():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(2.5)
        return sim.now

    result = sim.run_process(proc(sim))
    assert result == 2.5
    assert sim.now == 2.5


def test_timeout_value_is_passed_back():
    sim = Simulator()

    def proc(sim):
        value = yield sim.timeout(1.0, value="payload")
        return value

    assert sim.run_process(proc(sim)) == "payload"


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []

    def make(delay, label):
        def proc(sim):
            yield sim.timeout(delay)
            order.append(label)
        return proc

    sim.process(make(3, "c")(sim))
    sim.process(make(1, "a")(sim))
    sim.process(make(2, "b")(sim))
    sim.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fifo_order():
    sim = Simulator()
    order = []

    def proc(label):
        def inner(sim):
            yield sim.timeout(1)
            order.append(label)
        return inner

    for label in ["first", "second", "third"]:
        sim.process(proc(label)(sim))
    sim.run()
    assert order == ["first", "second", "third"]


def test_process_waits_on_other_process():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(4)
        return 42

    def parent(sim):
        value = yield sim.process(child(sim))
        return value * 2

    assert sim.run_process(parent(sim)) == 84
    assert sim.now == 4


def test_future_succeed_and_value():
    sim = Simulator()
    future = sim.future()

    def producer(sim):
        yield sim.timeout(1)
        future.succeed("result")

    def consumer(sim):
        value = yield future
        return value

    sim.process(producer(sim))
    assert sim.run_process(consumer(sim)) == "result"


def test_future_fail_raises_in_waiter():
    sim = Simulator()
    future = sim.future()

    def producer(sim):
        yield sim.timeout(1)
        future.fail(RuntimeError("boom"))

    def consumer(sim):
        try:
            yield future
        except RuntimeError as exc:
            return str(exc)
        return "no exception"

    sim.process(producer(sim))
    assert sim.run_process(consumer(sim)) == "boom"


def test_event_cannot_trigger_twice():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(EventAlreadyTriggered):
        event.succeed(2)
    with pytest.raises(EventAlreadyTriggered):
        event.fail(RuntimeError())


def test_fail_requires_exception():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(TypeError):
        event.fail("not an exception")


def test_all_of_waits_for_all():
    sim = Simulator()

    def proc(sim):
        t1 = sim.timeout(1, value="a")
        t2 = sim.timeout(3, value="b")
        result = yield sim.all_of([t1, t2])
        return result.values()

    assert sim.run_process(proc(sim)) == ["a", "b"]
    assert sim.now == 3


def test_any_of_fires_on_first():
    sim = Simulator()

    def proc(sim):
        t1 = sim.timeout(1, value="fast")
        t2 = sim.timeout(10, value="slow")
        result = yield sim.any_of([t1, t2])
        return result.values()

    assert sim.run_process(proc(sim)) == ["fast"]
    assert sim.now == 1


def test_all_of_empty_fires_immediately():
    sim = Simulator()

    def proc(sim):
        result = yield sim.all_of([])
        return len(result)

    assert sim.run_process(proc(sim)) == 0


def test_run_until_time():
    sim = Simulator()
    ticks = []

    def ticker(sim):
        while True:
            yield sim.timeout(1)
            ticks.append(sim.now)

    sim.process(ticker(sim))
    sim.run(until=5)
    assert ticks == [1, 2, 3, 4, 5]


def test_run_until_time_with_empty_queue_advances_clock():
    sim = Simulator()
    sim.run(until=7.5)
    assert sim.now == 7.5
    # A later target keeps advancing; an earlier one never rewinds.
    sim.run(until=10.0)
    assert sim.now == 10.0
    sim.run(until=3.0)
    assert sim.now == 10.0


def test_run_until_time_with_sparse_queue_lands_exactly_on_limit():
    sim = Simulator()
    fired = []

    def proc(sim):
        yield sim.timeout(2.0)
        fired.append(sim.now)
        yield sim.timeout(10.0)
        fired.append(sim.now)

    sim.process(proc(sim))
    # The first event (t=2) is before the limit, the second (t=12) after it:
    # the clock must stop exactly at the limit, not at either event time.
    sim.run(until=5.0)
    assert fired == [2.0]
    assert sim.now == 5.0
    sim.run()
    assert fired == [2.0, 12.0]
    assert sim.now == 12.0


def test_run_until_event_deadlock_detection():
    sim = Simulator()
    never = sim.future()
    with pytest.raises(SimulationDeadlock):
        sim.run(until=never)


def test_process_yielding_non_event_fails():
    sim = Simulator(fail_silently=True)

    def bad(sim):
        yield "not an event"

    proc = sim.process(bad(sim))
    sim.run()
    assert proc.triggered and not proc.ok
    assert isinstance(proc.value, SimulationError)


def test_process_exception_propagates_to_waiter():
    sim = Simulator(fail_silently=True)

    def failing(sim):
        yield sim.timeout(1)
        raise ValueError("inner failure")

    def waiter(sim):
        try:
            yield sim.process(failing(sim))
        except ValueError as exc:
            return f"caught {exc}"
        return "not caught"

    assert sim.run_process(waiter(sim)) == "caught inner failure"


def test_crashed_processes_recorded():
    sim = Simulator()

    def failing(sim):
        yield sim.timeout(1)
        raise ValueError("recorded")

    sim.process(failing(sim))
    sim.run()
    assert len(sim.crashed_processes) == 1
    _proc, exc = sim.crashed_processes[0]
    assert isinstance(exc, ValueError)


def test_interrupt_wakes_process():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100)
        except ProcessInterrupted as interrupt:
            log.append(interrupt.cause)
        return "interrupted"

    def interrupter(sim, target):
        yield sim.timeout(2)
        target.interrupt(cause="wake up")

    target = sim.process(sleeper(sim))
    sim.process(interrupter(sim, target))
    sim.run(until=target)
    assert target.value == "interrupted"
    assert log == ["wake up"]
    assert sim.now == pytest.approx(2)


def test_interrupt_terminated_process_is_noop():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1)
        return "done"

    proc = sim.process(quick(sim))
    sim.run()
    proc.interrupt()  # must not raise
    sim.run()
    assert proc.value == "done"


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.process(lambda: None)  # type: ignore[arg-type]


def test_rng_streams_are_deterministic():
    a = RandomStreams(42)
    b = RandomStreams(42)
    assert [a.stream("x").random() for _ in range(5)] == [
        b.stream("x").random() for _ in range(5)
    ]


def test_rng_streams_are_independent():
    streams = RandomStreams(42)
    x_values = [streams.stream("x").random() for _ in range(5)]
    streams2 = RandomStreams(42)
    _ = [streams2.stream("y").random() for _ in range(100)]
    x_values2 = [streams2.stream("x").random() for _ in range(5)]
    assert x_values == x_values2


def test_derive_seed_stable_and_distinct():
    assert derive_seed(1, "a") == derive_seed(1, "a")
    assert derive_seed(1, "a") != derive_seed(1, "b")
    assert derive_seed(1, "a") != derive_seed(2, "a")


def test_rng_spawn_namespacing():
    parent = RandomStreams(7)
    child_a = parent.spawn("peer-a")
    child_b = parent.spawn("peer-b")
    assert child_a.stream("lat").random() != child_b.stream("lat").random()


def test_trace_log_records_annotations():
    sim = Simulator(trace=True)

    def proc(sim):
        yield sim.timeout(1)
        sim.trace.annotate(sim.now, "protocol", "validated patch", payload={"ts": 1})

    sim.run_process(proc(sim))
    protocol_records = sim.trace.filter(category="protocol")
    assert len(protocol_records) == 1
    assert protocol_records[0].payload == {"ts": 1}
    assert "protocol" in sim.trace.categories()


def test_trace_disabled_records_nothing():
    sim = Simulator(trace=False)
    sim.run_process((sim.timeout(1) for _ in range(1)))
    assert len(sim.trace) == 0
