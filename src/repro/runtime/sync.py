"""Synchronization primitives at the runtime layer.

:class:`FifoLock` and :class:`Semaphore` are implemented against the
runtime contract only (they need nothing beyond ``runtime.future()``), so
the same lock serializes Master-key validations on the deterministic
kernel and on the asyncio backend.  The canonical implementation lives in
:mod:`repro.sim.sync` (below this layer); this module is the import point
for everything above ``repro.runtime``.
"""

from __future__ import annotations

from ..sim.sync import FifoLock, Semaphore

__all__ = ["FifoLock", "Semaphore"]
