"""repro — a reproduction of *P2P Logging and Timestamping for Reconciliation*.

Tlili, Dedzoe, Pacitti, Akbarinia, Valduriez — INRIA RR-6497 / VLDB 2008
demonstration.  The package implements the full system described in the
report and every substrate it depends on:

* :mod:`repro.sim` — deterministic discrete-event simulation kernel.
* :mod:`repro.runtime` — the execution-runtime abstraction the whole stack
  runs on: the deterministic ``SimRuntime`` (default) and the wall-clock
  ``AsyncioRuntime`` live backend.
* :mod:`repro.net` — simulated network (latency, loss, partitions, RPC).
* :mod:`repro.chord` — a from-scratch Chord DHT (the Open Chord substitute).
* :mod:`repro.dht` — uniform DHT client facade.
* :mod:`repro.kts` — key-based timestamp service (gen_ts / last_ts).
* :mod:`repro.p2plog` — the replicated, highly available patch log.
* :mod:`repro.ot` — line-based operational transformation (So6 substitute).
* :mod:`repro.core` — the P2P-LTR protocol itself (Master-key peers, user
  peers, validation, retrieval, succession) and the :class:`LtrSystem`
  deployment wrapper.
* :mod:`repro.app` — a small collaborative wiki built on the public API.
* :mod:`repro.baselines` — centralized-reconciler and last-writer-wins
  baselines used by the evaluation.
* :mod:`repro.workloads` — synthetic editing and churn workload generators.
* :mod:`repro.metrics` — measurement helpers and result tables.
* :mod:`repro.faults` — declarative fault injection: composable
  :class:`~repro.faults.FaultPlan` schedules replayed by a nemesis.
* :mod:`repro.check` — the convergence checker snapshotting the commit
  invariants at every fault boundary.
* :mod:`repro.experiments` — the harness regenerating every scenario and
  figure of the paper's evaluation (see ``EXPERIMENTS.md``).

Quickstart::

    from repro import LtrSystem

    system = LtrSystem(seed=1)
    system.bootstrap(8)
    system.edit_and_commit("peer-0", "wiki:home", "Hello from peer-0")
    system.edit_and_commit("peer-1", "wiki:home", "Hello from peer-0\\nand peer-1")
    report = system.check_consistency("wiki:home")
    assert report.converged
"""

from .core import (
    CommitResult,
    ConsistencyReport,
    LtrConfig,
    LtrSystem,
    MasterService,
    SyncResult,
    UserPeer,
    ValidationResult,
)
from .errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "CommitResult",
    "ConsistencyReport",
    "LtrConfig",
    "LtrSystem",
    "MasterService",
    "ReproError",
    "SyncResult",
    "UserPeer",
    "ValidationResult",
    "__version__",
]
