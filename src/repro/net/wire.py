"""Real-socket transport: the wire codec over TCP or Unix-domain streams.

:class:`WireNetwork` extends the in-process :class:`~repro.net.transport.Network`
with a *routes table* mapping peer names to the processes hosting them.  A
message whose destination lives in this process takes the inherited
in-memory path (latency model, partitions, fidelity copy — byte-identical
semantics to a single-process run); a message routed to another process is
serialized through :mod:`repro.net.codec`, length-prefix framed and written
to a lazily opened stream connection.

Transport semantics are deliberately datagram-like, mirroring the simulated
network's contract: a message that cannot be delivered (peer not yet
listening, connection reset, codec rejection on the receiving side) is
*dropped*, and the RPC layer's timeout/retry machinery — the same machinery
the P2P-LTR failure procedures are built on — is what notices.  Connections
carry a version-checked hello frame first; a peer speaking a different wire
version drops the connection instead of guessing.

The class requires a runtime with a real asyncio event loop
(:class:`~repro.runtime.AsyncioRuntime`); constructing it over the
deterministic simulation backend raises
:class:`~repro.errors.ConfigurationError`, which is what keeps the
simulator's byte-identical artifacts out of reach of socket nondeterminism.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Union

from ..errors import CodecError, ConfigurationError
from .codec import FrameDecoder, decode_any, encode_hello, encode_message, frame
from .latency import LatencyModel
from .message import DeliveryReceipt, Message
from .transport import Network

#: Per-link cap on queued outbound frames; beyond it new frames are dropped
#: (backpressure degrades to loss, which RPC timeouts absorb).
MAX_OUTBOUND_QUEUE = 4096

#: How often a link retries connecting before dropping the frame that
#: triggered the attempt.  Cluster startup races (the founder not listening
#: yet) resolve within the first few retries.
CONNECT_ATTEMPTS = 5
CONNECT_BACKOFF = 0.1


@dataclass(frozen=True)
class WireEndpoint:
    """Where one cluster process listens.

    Two schemes: ``tcp`` (host + port) and ``uds`` (filesystem path).
    Endpoints render to and parse from URL-style specs (``tcp://host:port``,
    ``uds:///run/peer0.sock``) so they can travel through config files and
    CLI flags unchanged.
    """

    scheme: str
    host: str = ""
    port: int = 0
    path: str = ""

    def __post_init__(self) -> None:
        if self.scheme not in ("tcp", "uds"):
            raise ConfigurationError(f"unknown wire scheme {self.scheme!r}")
        if self.scheme == "tcp" and not self.host:
            raise ConfigurationError("tcp endpoints need a host")
        if self.scheme == "uds" and not self.path:
            raise ConfigurationError("uds endpoints need a path")

    @classmethod
    def parse(cls, spec: Union[str, "WireEndpoint"]) -> "WireEndpoint":
        """Parse ``tcp://host:port`` or ``uds:///path`` (idempotent)."""
        if isinstance(spec, WireEndpoint):
            return spec
        if spec.startswith("tcp://"):
            rest = spec[len("tcp://"):]
            host, separator, port = rest.rpartition(":")
            if not separator or not port.isdigit():
                raise ConfigurationError(f"malformed tcp endpoint {spec!r}")
            return cls("tcp", host=host, port=int(port))
        if spec.startswith("uds://"):
            return cls("uds", path=spec[len("uds://"):])
        raise ConfigurationError(f"malformed wire endpoint {spec!r}")

    def render(self) -> str:
        """The URL-style spec this endpoint parses back from."""
        if self.scheme == "tcp":
            return f"tcp://{self.host}:{self.port}"
        return f"uds://{self.path}"

    def __str__(self) -> str:
        return self.render()


class _OutboundLink:
    """One lazily connected, queue-fed stream to a remote process."""

    def __init__(self, network: "WireNetwork", endpoint: WireEndpoint) -> None:
        self.network = network
        self.endpoint = endpoint
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=MAX_OUTBOUND_QUEUE)
        self.writer: Optional[asyncio.StreamWriter] = None
        self.task = network.runtime.spawn(self._run(), name=f"wire-out:{endpoint}")

    def send(self, data: bytes) -> bool:
        """Enqueue one frame; ``False`` when the queue is saturated."""
        try:
            self.queue.put_nowait(data)
            return True
        except asyncio.QueueFull:
            return False

    async def _run(self) -> None:
        while True:
            data = await self.queue.get()
            writer = await self._ensure_connected()
            if writer is None:
                self.network.wire_stats["frames_dropped_out"] += 1
                continue
            try:
                writer.write(data)
                await writer.drain()
                self.network.wire_stats["frames_out"] += 1
            except (ConnectionError, OSError):
                self._disconnect()
                self.network.wire_stats["frames_dropped_out"] += 1

    async def _ensure_connected(self) -> Optional[asyncio.StreamWriter]:
        if self.writer is not None and not self.writer.is_closing():
            return self.writer
        self.writer = None
        for attempt in range(CONNECT_ATTEMPTS):
            try:
                if self.endpoint.scheme == "uds":
                    _reader, writer = await asyncio.open_unix_connection(self.endpoint.path)
                else:
                    _reader, writer = await asyncio.open_connection(
                        self.endpoint.host, self.endpoint.port
                    )
                writer.write(frame(encode_hello(self.network.process_name)))
                await writer.drain()
                self.writer = writer
                return writer
            except (ConnectionError, OSError):
                self.network.wire_stats["connect_failures"] += 1
                await asyncio.sleep(CONNECT_BACKOFF * (attempt + 1))
        return None

    def _disconnect(self) -> None:
        if self.writer is not None:
            self.writer.close()
            self.writer = None

    def close(self) -> None:
        self.task.cancel()
        self._disconnect()


class WireNetwork(Network):
    """A :class:`Network` whose remote legs are real stream sockets.

    Parameters
    ----------
    runtime:
        Must expose a live asyncio loop (``AsyncioRuntime``).
    process_name:
        This process's identity, announced in connection hello frames.
    listen:
        The endpoint this process serves (spec string or
        :class:`WireEndpoint`).
    routes:
        Peer name -> endpoint of the process hosting it.  Names routing to
        ``listen`` (and names absent from the table) are local.
    """

    def __init__(
        self,
        runtime,
        *,
        process_name: str,
        listen: Union[str, WireEndpoint],
        routes: Optional[Mapping[str, Union[str, WireEndpoint]]] = None,
        latency: Optional[LatencyModel] = None,
        default_timeout: Optional[float] = None,
        wire_fidelity: str = "copy",
    ) -> None:
        if getattr(runtime, "loop", None) is None:
            raise ConfigurationError(
                "WireNetwork needs a runtime with a real event loop "
                "(AsyncioRuntime); the deterministic SimRuntime stays on the "
                "in-memory transport"
            )
        super().__init__(
            runtime,
            latency=latency,
            default_timeout=default_timeout,
            wire_fidelity=wire_fidelity,
        )
        self.process_name = process_name
        self.listen_endpoint = WireEndpoint.parse(listen)
        self.routes: Dict[str, WireEndpoint] = {
            name: WireEndpoint.parse(spec) for name, spec in (routes or {}).items()
        }
        self.wire_stats = {
            "frames_in": 0,
            "frames_out": 0,
            "frames_dropped_out": 0,
            "connect_failures": 0,
            "decode_errors": 0,
            "connections_in": 0,
        }
        self._links: Dict[WireEndpoint, _OutboundLink] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._inbound: set[asyncio.StreamWriter] = set()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Bind and serve :attr:`listen_endpoint` (blocking until bound)."""
        self.runtime.run_until_complete(self._start_server())

    async def _start_server(self) -> None:
        if self._server is not None:
            return
        if self.listen_endpoint.scheme == "uds":
            self._server = await asyncio.start_unix_server(
                self._on_connection, path=self.listen_endpoint.path
            )
        else:
            self._server = await asyncio.start_server(
                self._on_connection,
                host=self.listen_endpoint.host,
                port=self.listen_endpoint.port,
            )
            if self.listen_endpoint.port == 0:
                # The OS picked the port; publish it so route tables built
                # from this endpoint point somewhere real.
                actual = self._server.sockets[0].getsockname()[1]
                self.listen_endpoint = WireEndpoint(
                    "tcp", host=self.listen_endpoint.host, port=actual
                )

    def stop(self) -> None:
        """Close the server and every outbound link."""
        self.runtime.run_until_complete(self._stop())

    async def _stop(self) -> None:
        for link in self._links.values():
            link.close()
        self._links.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Established inbound connections outlive server.close(); close
        # them explicitly so their reader tasks finish before the loop does.
        for writer in list(self._inbound):
            writer.close()
        self._inbound.clear()
        await asyncio.sleep(0)

    # -- routing ------------------------------------------------------------

    def add_route(self, name: str, endpoint: Union[str, WireEndpoint]) -> None:
        """Teach this process where peer ``name`` lives."""
        self.routes[name] = WireEndpoint.parse(endpoint)

    def is_remote(self, name: str) -> bool:
        """``True`` when ``name`` routes to another process."""
        target = self.routes.get(name)
        return target is not None and target != self.listen_endpoint

    # -- sending ------------------------------------------------------------

    def send(self, message: Message) -> DeliveryReceipt:
        if not self.is_remote(message.destination.name):
            return super().send(message)
        self.stats.record_sent(message)
        if message.source not in self._endpoints:
            self.stats.record_dropped(message)
            return DeliveryReceipt(message, False, None, "source not registered")
        data = frame(encode_message(message))
        link = self._link(self.routes[message.destination.name])
        if not link.send(data):
            self.stats.record_dropped(message)
            return DeliveryReceipt(message, False, None, "outbound queue full")
        return DeliveryReceipt(message, True, None)

    def _link(self, endpoint: WireEndpoint) -> _OutboundLink:
        link = self._links.get(endpoint)
        if link is None:
            link = _OutboundLink(self, endpoint)
            self._links[endpoint] = link
        return link

    # -- receiving ----------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.wire_stats["connections_in"] += 1
        self._inbound.add(writer)
        decoder = FrameDecoder()
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    return
                for body in decoder.feed(data):
                    kind, decoded = decode_any(body)
                    if kind == "hello":
                        continue  # version already checked by the envelope
                    if kind == "message":
                        self.wire_stats["frames_in"] += 1
                        self._deliver_from_wire(decoded)
        except CodecError:
            # Corrupt stream or incompatible peer: drop the connection; the
            # sender's RPC timeouts turn the silence into typed errors.
            self.wire_stats["decode_errors"] += 1
        except (ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            raise
        finally:
            self._inbound.discard(writer)
            if not writer.transport.is_closing():
                writer.close()

    def _deliver_from_wire(self, message: Message) -> None:
        """Hand a decoded remote message to its local endpoint.

        The codec round-trip already severed aliasing, so this skips the
        fidelity copy of the in-memory path.
        """
        endpoint = self._endpoints.get(message.destination)
        if endpoint is None:
            self.stats.record_dropped(message)
            return
        self.stats.record_delivered(message)
        endpoint.deliver(message)
