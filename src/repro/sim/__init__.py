"""Deterministic discrete-event simulation kernel.

This package is the reference implementation of the execution-runtime
contract (:mod:`repro.runtime`): the network (:mod:`repro.net`), the Chord
DHT (:mod:`repro.chord`) and the P2P-LTR peers (:mod:`repro.core`) are all
written as processes driven by a runtime, and a single :class:`Simulator`
(wrapped as ``repro.runtime.SimRuntime``, the default backend) schedules
them on a virtual clock — which makes experiments reproducible and lets
the benchmarks sweep latency, churn and failure parameters without
wall-clock sleeps.  Upper layers never import this package directly; they
program against :mod:`repro.runtime` (enforced by ``tests/test_layering.py``).
"""

from .events import AllOf, AnyOf, ConditionValue, Event, Future, Timeout
from .process import Process, ProcessGenerator
from .rng import RandomStreams, derive_seed
from .scheduler import Simulator
from .sync import FifoLock, Semaphore
from .tracing import TraceLog, TraceRecord

__all__ = [
    "AllOf",
    "AnyOf",
    "ConditionValue",
    "Event",
    "FifoLock",
    "Future",
    "Process",
    "ProcessGenerator",
    "RandomStreams",
    "Semaphore",
    "Simulator",
    "Timeout",
    "TraceLog",
    "TraceRecord",
    "derive_seed",
]
