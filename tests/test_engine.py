"""Tests for the declarative scenario engine (repro.engine)."""

import json

import pytest

from repro.engine import (
    Experiment,
    ScenarioSpec,
    Topology,
    headline_metrics,
    read_artifact,
    render_results,
    resolve_latency,
    run_scenario,
    with_parameters,
    write_artifacts,
)
from repro.net import ConstantLatency, LogNormalLatency


def _record_contexts(seen):
    def measure(ctx):
        seen.append((dict(ctx.params), ctx.repeat, ctx.seed))
        return {"x": ctx.params.get("x", 0), "y": ctx.params.get("y", 0),
                "seed": ctx.seed}
    return measure


def simple_spec(**kwargs):
    defaults = dict(
        scenario_id="T1",
        title="engine smoke",
        columns=("x", "y", "seed"),
        grid={"x": (1, 2), "y": (10, 20)},
        measure=lambda ctx: {"x": ctx.params["x"], "y": ctx.params["y"],
                             "seed": ctx.seed},
        seed=5,
    )
    defaults.update(kwargs)
    return ScenarioSpec(**defaults)


def test_grid_cross_product_in_declaration_order():
    result = run_scenario(simple_spec())
    assert [(row["x"], row["y"]) for row in result.rows] == [
        (1, 10), (1, 20), (2, 10), (2, 20),
    ]
    assert len(result.table) == 4
    assert result.column("x") == [1, 1, 2, 2]


def test_constants_merge_under_grid_points():
    seen = []
    spec = ScenarioSpec(
        scenario_id="T2",
        title="constants",
        columns=("x", "y", "seed"),
        grid={"x": (1,)},
        constants={"y": 42},
        measure=_record_contexts(seen),
    )
    run_scenario(spec)
    assert seen[0][0] == {"x": 1, "y": 42}


def test_grid_and_constants_must_not_overlap():
    with pytest.raises(ValueError):
        simple_spec(constants={"x": 9})


def test_repeats_derive_distinct_seeds_and_fill_repeat_column():
    seen = []
    spec = ScenarioSpec(
        scenario_id="T3",
        title="repeats",
        columns=("value", "repeat"),
        measure=lambda ctx: {"value": ctx.seed},
        repeats=3,
        seed=100,
    )
    result = run_scenario(spec)
    seeds = result.column("value")
    assert len(set(seeds)) == 3  # every repeat gets its own derived seed
    assert result.column("repeat") == [0, 1, 2]
    assert seeds[0] == 100  # repeat 0 keeps the base seed


def test_seed_offset_reproduces_legacy_per_point_seeds():
    spec = simple_spec(seed_offset=lambda params: params["x"])
    result = run_scenario(spec)
    by_x = {row["x"]: row["seed"] for row in result.rows}
    assert by_x == {1: 5 + 1, 2: 5 + 2}


def test_measure_may_return_multiple_rows():
    spec = ScenarioSpec(
        scenario_id="T4",
        title="multi-row",
        columns=("event", "index"),
        measure=lambda ctx: [{"event": "a", "index": 0}, {"event": "b", "index": 1}],
    )
    result = run_scenario(spec)
    assert result.column("event") == ["a", "b"]


def test_with_parameters_overrides_grid_constants_and_seed():
    spec = simple_spec()
    tweaked = with_parameters(spec, x=(7,), extra="hello", seed=99)
    assert tweaked.grid["x"] == (7,)
    assert tweaked.constants["extra"] == "hello"
    assert tweaked.seed == 99
    # the original spec is untouched (specs are frozen values)
    assert spec.grid["x"] == (1, 2) and spec.seed == 5


def test_run_scenario_accepts_inline_overrides():
    result = run_scenario(simple_spec(), x=(3,), y=(30,))
    assert [(row["x"], row["y"]) for row in result.rows] == [(3, 30)]


def test_experiment_groups_runs_in_order_and_filters():
    specs = [simple_spec(scenario_id=f"S{i}", grid={"x": (i,), "y": (0,)})
             for i in range(3)]
    experiment = Experiment(name="campaign", specs=specs)
    assert experiment.scenario_ids() == ["S0", "S1", "S2"]
    results = experiment.run()
    assert [r.scenario_id for r in results] == ["S0", "S1", "S2"]
    subset = experiment.run(only=["S2", "S0"])
    assert [r.scenario_id for r in subset] == ["S0", "S2"]  # registration order
    with pytest.raises(KeyError):
        experiment.run(only=["S9"])
    with pytest.raises(KeyError):
        experiment.spec("S9")


def test_experiment_per_scenario_overrides():
    specs = [simple_spec(scenario_id="A"), simple_spec(scenario_id="B")]
    experiment = Experiment(name="campaign", specs=specs)
    results = experiment.run(overrides={"A": {"x": (9,), "y": (9,)}})
    by_id = {result.scenario_id: result for result in results}
    assert [(row["x"], row["y"]) for row in by_id["A"].rows] == [(9, 9)]
    assert len(by_id["B"].rows) == 4


def test_artifacts_round_trip(tmp_path):
    result = run_scenario(simple_spec())
    paths = write_artifacts([result], tmp_path, prefix="BENCH_")
    assert [path.name for path in paths] == ["BENCH_T1.json"]
    payload = read_artifact(paths[0])
    assert payload["scenario_id"] == "T1"
    assert payload["columns"] == ["x", "y", "seed"]
    assert payload["rows"] == result.rows
    assert "headline" in payload
    # the artifact is plain JSON, diffable across commits
    assert json.loads(paths[0].read_text())["grid"] == {"x": [1, 2], "y": [10, 20]}


def test_headline_metrics_average_numeric_columns_and_flag_fractions():
    spec = ScenarioSpec(
        scenario_id="T5",
        title="headline",
        columns=("mean_hops", "mean_commit_latency_s", "converged"),
        measure=lambda ctx: [
            {"mean_hops": 2.0, "mean_commit_latency_s": 0.1, "converged": True},
            {"mean_hops": 4.0, "mean_commit_latency_s": 0.3, "converged": False},
        ],
    )
    metrics = headline_metrics(run_scenario(spec))
    assert metrics["mean_mean_hops"] == pytest.approx(3.0)
    assert metrics["mean_mean_commit_latency_s"] == pytest.approx(0.2)
    assert metrics["fraction_converged"] == pytest.approx(0.5)


def test_resolve_latency_accepts_presets_constants_and_models():
    assert resolve_latency(None) == ConstantLatency(0.005)
    assert resolve_latency(0.02) == ConstantLatency(0.02)
    assert isinstance(resolve_latency("wan"), LogNormalLatency)
    model = ConstantLatency(0.001)
    assert resolve_latency(model) is model


def test_context_builders_produce_working_systems():
    built = {}

    def measure(ctx):
        system = ctx.build_system()
        result = system.edit_and_commit(system.peer_names()[0], "doc", "hello")
        ring = ctx.build_ring(4, settle=2.0)
        answer = ring.lookup("doc")
        built["peers"] = len(system.peer_names())
        return {"ts": result.ts, "correct": answer["node"] == ring.responsible_node("doc").ref}

    spec = ScenarioSpec(
        scenario_id="T6",
        title="builders",
        columns=("ts", "correct"),
        topology=Topology(peers=5),
        measure=measure,
        seed=3,
    )
    result = run_scenario(spec)
    assert result.rows[0] == {"ts": 1, "correct": True}
    assert built["peers"] == 5


def test_render_results_concatenates_tables():
    text = render_results([run_scenario(simple_spec())])
    assert "engine smoke" in text


def test_invalid_specs_rejected():
    with pytest.raises(ValueError):
        simple_spec(repeats=0)
    with pytest.raises(ValueError):
        simple_spec(columns=())
    with pytest.raises(ValueError):
        run_scenario(simple_spec(grid={"x": ()}))
