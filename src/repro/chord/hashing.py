"""Hashing utilities for the Chord identifier space.

Chord places both peers and keys on the same circular identifier space of
size ``2**m`` using a base hash function (SHA-1 in the original paper,
ref [9]/[11] of the P2P-LTR report).  P2P-LTR additionally needs two kinds
of *application-level* hash functions:

* ``ht`` — the *timestamp hash function* used to locate the Master-key peer
  responsible for a document key;
* ``Hr = {h1 .. hn}`` — a family of pairwise-independent *replication hash
  functions* used to place each timestamped patch at ``n`` distinct
  Log-Peers via ``put(hi(key + ts), patch)``.

Both are modelled here as :class:`SaltedHash` instances: SHA-1 over a salt
prefix plus the key text, truncated to the identifier space.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Sequence

#: Default number of bits of the Chord identifier space (SHA-1 width).
DEFAULT_ID_BITS = 160


def hash_to_id(value: str, bits: int = DEFAULT_ID_BITS, salt: str = "") -> int:
    """Map ``value`` to an integer identifier in ``[0, 2**bits)``.

    The mapping is SHA-1 based and therefore stable across processes and
    Python versions; ``salt`` produces independent hash functions from the
    same underlying digest.
    """
    if bits <= 0:
        raise ValueError(f"bits must be positive, got {bits}")
    digest = hashlib.sha1(f"{salt}|{value}".encode("utf-8")).digest()
    as_int = int.from_bytes(digest, "big")
    if bits >= 160:
        return as_int
    return as_int >> (160 - bits)


@dataclass(frozen=True)
class SaltedHash:
    """A single named hash function onto the identifier space."""

    name: str
    bits: int = DEFAULT_ID_BITS

    def __call__(self, value: str) -> int:
        return hash_to_id(value, bits=self.bits, salt=self.name)

    def placement_key(self, value: str) -> str:
        """A namespaced storage key for data placed through this function.

        The DHT stores values under string keys; routing uses the hash of
        that string.  Prefixing with the function name keeps placements of
        the same logical key through different hash functions distinct, as
        required for the replicated P2P-Log entries.
        """
        return f"{self.name}:{value}"


@dataclass(frozen=True)
class HashFunctionFamily:
    """A family of pairwise-independent hash functions ``{h1 .. hn}``.

    Used for the P2P-Log replication placement (``Hr`` in the paper).  The
    functions are derived from distinct salts, which for SHA-1 behaves as an
    independent family for all practical purposes.
    """

    functions: Sequence[SaltedHash]

    @classmethod
    def create(cls, count: int, bits: int = DEFAULT_ID_BITS, prefix: str = "hr") -> "HashFunctionFamily":
        """Create a family of ``count`` functions named ``hr1 .. hrN``."""
        if count < 1:
            raise ValueError(f"a hash family needs at least one function, got {count}")
        return cls(tuple(SaltedHash(f"{prefix}{index}", bits) for index in range(1, count + 1)))

    def __len__(self) -> int:
        return len(self.functions)

    def __iter__(self):
        return iter(self.functions)

    def __getitem__(self, index: int) -> SaltedHash:
        return self.functions[index]

    def placements(self, value: str) -> list[tuple[SaltedHash, int]]:
        """All ``(function, identifier)`` placements of ``value``."""
        return [(function, function(value)) for function in self.functions]


def timestamp_hash(bits: int = DEFAULT_ID_BITS) -> SaltedHash:
    """The ``ht`` hash function locating Master-key peers."""
    return SaltedHash("ht", bits)


def key_distribution(keys: Iterable[str], node_ids: Sequence[int], bits: int = DEFAULT_ID_BITS,
                     salt: str = "ht") -> dict[int, int]:
    """Count how many ``keys`` each node is responsible for.

    ``node_ids`` must be the sorted identifiers of the ring members.  A key
    with identifier ``k`` belongs to the first node id ``>= k`` (wrapping
    around), i.e. its Chord successor.  Used by experiment E1 to show that
    timestamping responsibility is spread over the DHT.
    """
    ordered = sorted(node_ids)
    if not ordered:
        raise ValueError("node_ids must not be empty")
    counts = {node_id: 0 for node_id in ordered}
    for key in keys:
        identifier = hash_to_id(key, bits=bits, salt=salt)
        owner = _successor_of(identifier, ordered)
        counts[owner] += 1
    return counts


def _successor_of(identifier: int, ordered_ids: Sequence[int]) -> int:
    """First node identifier clockwise from ``identifier`` (inclusive)."""
    for node_id in ordered_ids:
        if node_id >= identifier:
            return node_id
    return ordered_ids[0]
