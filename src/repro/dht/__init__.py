"""DHT client facade: a uniform put/get/lookup interface over Chord or a local table."""

from .api import DhtClient, GetItem, PutItem
from .chord_client import ChordDhtClient
from .local import LocalDht

__all__ = ["ChordDhtClient", "DhtClient", "GetItem", "LocalDht", "PutItem"]
