"""Synchronization primitives for simulation processes.

The P2P-LTR Master-key peer "serves each user peer sequentially": a new
timestamp for a document is only granted once the previous patch for that
document has been replicated.  :class:`FifoLock` provides exactly that
mutual exclusion between concurrently running handler processes, with FIFO
fairness so validation requests are served in arrival order.
:class:`Semaphore` generalises it to ``capacity`` concurrent holders and is
used by the workload drivers to bound in-flight operations.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque

if TYPE_CHECKING:  # pragma: no cover
    from .scheduler import Simulator


class FifoLock:
    """A non-reentrant mutual-exclusion lock with FIFO wakeup order.

    Usage inside a simulation process::

        yield from lock.acquire()
        try:
            ...critical section (may yield)...
        finally:
            lock.release()
    """

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._locked = False
        self._waiting: Deque = deque()

    @property
    def locked(self) -> bool:
        """``True`` while some process holds the lock."""
        return self._locked

    @property
    def waiters(self) -> int:
        """Number of processes currently queued for the lock."""
        return len(self._waiting)

    def acquire(self):
        """Acquire the lock (generator; use with ``yield from``)."""
        if not self._locked:
            self._locked = True
            return None
        ticket = self.sim.future()
        self._waiting.append(ticket)
        yield ticket
        # Ownership was passed directly to us by release(); the lock is
        # already marked as held.
        return None

    def release(self) -> None:
        """Release the lock, waking the longest-waiting process if any."""
        if not self._locked:
            raise RuntimeError("release() called on an unlocked FifoLock")
        if self._waiting:
            # Hand the lock over without toggling _locked so no other
            # process can sneak in between release and wakeup.
            self._waiting.popleft().succeed(None)
        else:
            self._locked = False


class Semaphore:
    """A counting semaphore with FIFO wakeup order."""

    def __init__(self, sim: "Simulator", capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"semaphore capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiting: Deque = deque()

    @property
    def available(self) -> int:
        """Number of slots currently free."""
        return self.capacity - self._in_use

    def acquire(self):
        """Take one slot (generator; use with ``yield from``)."""
        if self._in_use < self.capacity:
            self._in_use += 1
            return None
        ticket = self.sim.future()
        self._waiting.append(ticket)
        yield ticket
        return None

    def release(self) -> None:
        """Return one slot, waking the longest-waiting process if any."""
        if self._in_use <= 0:
            raise RuntimeError("release() called on a fully released Semaphore")
        if self._waiting:
            self._waiting.popleft().succeed(None)
        else:
            self._in_use -= 1
