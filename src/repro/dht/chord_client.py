"""Chord-backed implementation of the :class:`~repro.dht.api.DhtClient`."""

from __future__ import annotations

from typing import Any, Optional, Sequence

from ..chord import ChordNode, hash_to_id
from ..errors import PLACEMENT_FAILURES
from .api import DhtClient, GetItem, PutItem


class ChordDhtClient(DhtClient):
    """DHT operations routed through a peer's own Chord node.

    Every P2P-LTR peer is itself a member of the DHT (Figure 1 of the
    paper), so its DHT client simply delegates to the local
    :class:`~repro.chord.ChordNode`, which performs the routed lookups and
    remote stores.
    """

    def __init__(self, node: ChordNode) -> None:
        self.node = node

    @property
    def bits(self) -> int:
        """Width of the identifier space used by the underlying ring."""
        return self.node.config.bits

    def hash_key(self, key: str, salt: str = "") -> int:
        """Hash ``key`` onto the ring's identifier space."""
        return hash_to_id(key, self.bits, salt=salt)

    def put(self, key: str, value: Any, *, key_id: Optional[int] = None):
        result = yield from self.node.put(key, value, key_id=key_id)
        return result

    def put_many(self, items: Sequence[PutItem]):
        """Batched store: group items by responsible peer, one RPC per peer.

        All placements are resolved concurrently (repeated lookups towards
        the same arc are served by the route cache), the items are grouped
        by owner, and each owner receives its whole group in a single
        ``store_many`` RPC — which also pushes the successor replicas with
        one notification per owner instead of one per item.  An item whose
        placement cannot be resolved, or whose owner is unreachable, is
        reported as not stored; the batch itself never fails wholesale.
        """
        items = list(items)
        if not items:
            return {"stored": [], "owners": 0, "hops": 0}
        runtime = self.node.runtime
        resolutions = [
            runtime.process(
                self._resolve_placement(key, key_id),
                name=f"resolve:{key}",
            )
            for key, _value, key_id in items
        ]
        yield runtime.all_of(resolutions)
        stored = [False] * len(items)
        hops = 0
        groups: dict[Any, list[int]] = {}
        for index, resolution in enumerate(resolutions):
            outcome = resolution.value
            if outcome is None:
                continue
            owner, answer_hops = outcome
            hops += answer_hops
            groups.setdefault(owner, []).append(index)
        writes = [
            (
                indexes,
                runtime.process(
                    self._store_group(owner, [items[i] for i in indexes]),
                    name=f"store_many:{owner.address.name}",
                ),
            )
            for owner, indexes in groups.items()
        ]
        if writes:
            yield runtime.all_of([process for _indexes, process in writes])
        for indexes, process in writes:
            if process.value:
                for index in indexes:
                    stored[index] = True
        return {"stored": stored, "owners": len(groups), "hops": hops}

    def _resolve_placement(self, key: str, key_id: Optional[int]):
        """Locate the owner of one placement; ``None`` when routing fails."""
        identifier = key_id if key_id is not None else self.hash_key(key)
        try:
            answer = yield from self.node.find_successor(identifier)
        except PLACEMENT_FAILURES:
            return None
        return answer["node"], answer["hops"]

    def _store_group(self, owner, group: Sequence[PutItem]):
        """Write one owner's share of a batch in a single RPC."""
        payload = [
            {
                "key": key,
                "value": value,
                "key_id": key_id if key_id is not None else self.hash_key(key),
            }
            for key, value, key_id in group
        ]
        try:
            yield self.node.rpc.call(
                owner.address,
                "store_many",
                items=payload,
                timeout=self.node.config.rpc_timeout,
            )
        except PLACEMENT_FAILURES:
            return False
        return True

    def get(self, key: str, *, key_id: Optional[int] = None):
        result = yield from self.node.get(key, key_id=key_id)
        return result

    def get_many(self, items: Sequence[GetItem]):
        """Batched fetch: group items by responsible peer, one RPC per peer.

        The read-side mirror of :meth:`put_many`: all placements are
        resolved concurrently (repeated lookups towards the same arc are
        served by the route cache), the items are grouped by owner, and
        each owner answers its whole group through a single ``fetch_many``
        RPC.  An item whose placement cannot be resolved, whose owner is
        unreachable, or which the owner does not hold is reported as
        ``None``; the batch itself never fails wholesale.
        """
        items = list(items)
        if not items:
            return {"values": [], "owners": 0, "hops": 0}
        runtime = self.node.runtime
        resolutions = [
            runtime.process(
                self._resolve_placement(key, key_id),
                name=f"resolve:{key}",
            )
            for key, key_id in items
        ]
        yield runtime.all_of(resolutions)
        values: list[Any] = [None] * len(items)
        hops = 0
        groups: dict[Any, list[int]] = {}
        for index, resolution in enumerate(resolutions):
            outcome = resolution.value
            if outcome is None:
                continue
            owner, answer_hops = outcome
            hops += answer_hops
            groups.setdefault(owner, []).append(index)
        reads = [
            (
                indexes,
                runtime.process(
                    self._fetch_group(owner, [items[i][0] for i in indexes]),
                    name=f"fetch_many:{owner.address.name}",
                ),
            )
            for owner, indexes in groups.items()
        ]
        if reads:
            yield runtime.all_of([process for _indexes, process in reads])
        for indexes, process in reads:
            found = process.value
            if not found:
                continue
            for index in indexes:
                values[index] = found.get(items[index][0])
        return {"values": values, "owners": len(groups), "hops": hops}

    def _fetch_group(self, owner, keys: Sequence[str]):
        """Read one owner's share of a batch in a single RPC; ``None`` on failure."""
        try:
            answer = yield self.node.rpc.call(
                owner.address,
                "fetch_many",
                keys=list(keys),
                timeout=self.node.config.rpc_timeout,
            )
        except PLACEMENT_FAILURES:
            return None
        return answer

    def remove(self, key: str, *, key_id: Optional[int] = None):
        result = yield from self.node.remove(key, key_id=key_id)
        return result

    def lookup(self, key: str, *, key_id: Optional[int] = None):
        if key_id is not None:
            result = yield from self.node.find_successor(key_id)
        else:
            result = yield from self.node.lookup(key)
        return result

    def call_owner(self, routing_key: str, method: str, *, key_id: Optional[int] = None,
                   timeout: Optional[float] = None, **arguments: Any):
        """Route to the responsible peer, then invoke ``method`` on it.

        Returns ``{"owner": NodeRef, "hops": int, "result": Any}``.
        """
        identifier = key_id if key_id is not None else self.hash_key(routing_key)
        answer = yield from self.node.find_successor(identifier)
        owner = answer["node"]
        outcome = yield self.node.rpc.call(owner.address, method, timeout=timeout, **arguments)
        return {"owner": owner, "hops": answer["hops"], "result": outcome}
