"""P2P-Log: the highly available, DHT-resident log of timestamped patches."""

from .entry import LogEntry, make_log_key
from .log import P2PLogClient

__all__ = ["LogEntry", "P2PLogClient", "make_log_key"]
