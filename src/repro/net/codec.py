"""The versioned wire codec: every RPC payload as bytes, and back.

The simulator hands :class:`~repro.net.message.Message` objects between
peers by reference; a real deployment cannot.  This module defines the wire
representation those messages (and every payload type they carry) travel
as: a *tagged value tree* serialized as msgpack when the library is
available and compact JSON otherwise, wrapped in a versioned envelope and a
length-prefixed frame.

Three design points keep the codec inside the network layer without
upward imports:

* **Tagged values.**  Scalars and string-keyed dictionaries encode
  natively; everything else (tuples, sets, bytes, big ring identifiers,
  registered dataclasses) becomes ``{"~t": tag, "v": ...}``.  The tag key
  ``~t`` is reserved: payload dictionaries using it are wrapped as
  explicit entry lists, so arbitrary payloads round-trip unambiguously.
* **A registration hook.**  ``repro.net`` cannot import the layers above
  it, so each layer registers its own wire types at import time
  (:func:`register_wire_type`): chord registers ``NodeRef`` and
  ``StoredItem``, p2plog registers ``LogEntry``/``Checkpoint`` and the OT
  patch types, core registers ``CommitBatch``.  Decoding a tag nobody
  registered raises :class:`~repro.errors.CodecError`.
* **Typed error envelopes.**  Exceptions never cross the wire as live
  objects: :func:`envelope_from_exception` flattens them to an
  :class:`ErrorEnvelope` (code + constructor args from the
  :mod:`repro.errors` hierarchy, traceback text in a debug field) and
  :func:`exception_from_envelope` reconstructs them caller-side; unknown
  codes map to :class:`~repro.errors.NetworkError`.

The same registry powers :func:`copy_payload`, the structural copy the
simulated network applies per delivery (``wire_fidelity="copy"``) so that
sim-mode semantics match what serialization enforces, without paying
byte-level encoding on every simulated message.
"""

from __future__ import annotations

import base64
import copy as _copy
import json
import math
import traceback as _traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..errors import CodecError, NetworkError, ReproError
from .address import Address
from .message import Message, MessageKind

try:  # msgpack is optional: JSON is the always-available fallback format.
    import msgpack  # type: ignore
except ModuleNotFoundError:  # pragma: no cover - depends on environment
    msgpack = None

#: Version stamped into every envelope; receivers reject other versions.
WIRE_VERSION = 1

#: The serialization format this process emits ("msgpack" or "json").
#: Decoding sniffs the frame, so mixed-format peers interoperate as long
#: as both sides can *read* msgpack; a JSON-only peer rejects msgpack
#: frames with a :class:`~repro.errors.CodecError`.
WIRE_FORMAT = "msgpack" if msgpack is not None else "json"

#: Reserved tag key of the wire representation (see module docstring).
TAG_KEY = "~t"

#: Length prefix of a frame: 4 bytes, big endian.
FRAME_HEADER_SIZE = 4

#: Upper bound on one frame's body; protects receivers from a corrupt or
#: hostile length prefix allocating unbounded buffers.
MAX_FRAME_SIZE = 16 * 1024 * 1024

#: msgpack cannot represent integers outside the 64-bit range; Chord ring
#: identifiers (160-bit by default) are tagged past these bounds.
_INT_MIN = -(2**63)
_INT_MAX = 2**64 - 1


# ---------------------------------------------------------------------------
# Error envelopes
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ErrorEnvelope:
    """A serializable description of one exception.

    ``code`` is the exception class name (resolved against the
    :mod:`repro.errors` hierarchy, then builtin exceptions, on the
    receiving side), ``args`` the wire-safe constructor arguments and
    ``debug`` the formatted remote traceback — carried as text, never as a
    live frame chain.
    """

    code: str
    message: str
    args: tuple[Any, ...] = ()
    debug: str = ""


def _wire_safe_arg(value: Any) -> Any:
    """Exception args restricted to scalars; anything else becomes a repr."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def _build_error_registry() -> Dict[str, type]:
    """Exception classes reconstructible by name on the receiving side."""
    import builtins

    from .. import errors as errors_module

    registry: Dict[str, type] = {}
    for name, obj in vars(builtins).items():
        if isinstance(obj, type) and issubclass(obj, Exception):
            registry[name] = obj
    for name, obj in vars(errors_module).items():
        if isinstance(obj, type) and issubclass(obj, ReproError):
            registry[name] = obj
    return registry


_ERROR_REGISTRY = _build_error_registry()


def envelope_from_exception(exc: BaseException, *, debug: bool = True) -> ErrorEnvelope:
    """Flatten ``exc`` into a wire-safe :class:`ErrorEnvelope`."""
    from ..errors import CheckpointUnavailable, PatchUnavailable, StaleTimestamp

    # Classes with derived-message constructors are rebuilt from their
    # carried attributes, not from ``args`` (which hold the formatted text).
    if isinstance(exc, StaleTimestamp):
        args: tuple[Any, ...] = (exc.expected, exc.last_ts)
    elif isinstance(exc, (PatchUnavailable, CheckpointUnavailable)):
        args = (exc.key, _wire_safe_arg(exc.ts))
    else:
        args = tuple(_wire_safe_arg(value) for value in getattr(exc, "args", ()))
    debug_text = ""
    if debug and exc.__traceback__ is not None:
        debug_text = "".join(
            _traceback.format_exception(type(exc), exc, exc.__traceback__)
        )
    return ErrorEnvelope(
        code=type(exc).__name__, message=str(exc), args=args, debug=debug_text
    )


def exception_from_envelope(envelope: ErrorEnvelope) -> BaseException:
    """Reconstruct the exception an :class:`ErrorEnvelope` describes.

    Unknown codes (a newer peer, a custom class the receiver does not
    have) degrade to :class:`~repro.errors.NetworkError` carrying the
    remote code and message; the remote traceback, when present, is
    attached as ``remote_traceback`` for debugging.
    """
    cls = _ERROR_REGISTRY.get(envelope.code)
    error: Optional[BaseException] = None
    if cls is not None:
        try:
            error = cls(*envelope.args)
        except Exception:  # noqa: BLE001 - constructor mismatch, fall through
            try:
                error = cls(envelope.message)
            except Exception:  # noqa: BLE001
                error = None
    if error is None:
        error = NetworkError(f"remote error {envelope.code}: {envelope.message}")
    if envelope.debug:
        error.remote_traceback = envelope.debug  # type: ignore[attr-defined]
    return error


# ---------------------------------------------------------------------------
# The wire-type registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WireType:
    """How one Python type crosses the wire.

    ``pack(obj, to_wire)`` returns the jsonable body stored under the tag;
    ``unpack(body, from_wire)`` rebuilds the object; ``copy(obj, copier)``
    is the structural copy used by ``wire_fidelity="copy"`` (identity for
    fully immutable types).
    """

    tag: str
    cls: type
    pack: Callable[[Any, Callable[[Any], Any]], Any]
    unpack: Callable[[Any, Callable[[Any], Any]], Any]
    copy: Callable[[Any, Callable[[Any], Any]], Any]


_WIRE_TYPES: Dict[type, WireType] = {}
_WIRE_TAGS: Dict[str, WireType] = {}


def register_wire_type(
    cls: type,
    tag: str,
    pack: Callable[[Any, Callable[[Any], Any]], Any],
    unpack: Callable[[Any, Callable[[Any], Any]], Any],
    copy: Optional[Callable[[Any, Callable[[Any], Any]], Any]] = None,
) -> None:
    """Register ``cls`` under ``tag``; layers call this at import time.

    Re-registering the same class under its tag is a no-op (module
    reloads); claiming an occupied tag for a different class is an error.
    """
    existing = _WIRE_TAGS.get(tag)
    if existing is not None and existing.cls.__qualname__ != cls.__qualname__:
        raise CodecError(
            f"wire tag {tag!r} already registered for {existing.cls.__qualname__}"
        )
    if copy is None:
        copy = lambda obj, copier: obj  # noqa: E731 - immutable by declaration
        _IMMUTABLE_LEAVES.add(cls)
    else:
        _IMMUTABLE_LEAVES.discard(cls)
    wire_type = WireType(tag=tag, cls=cls, pack=pack, unpack=unpack, copy=copy)
    _WIRE_TYPES[cls] = wire_type
    _WIRE_TAGS[tag] = wire_type


def registered_wire_tags() -> list[str]:
    """All registered tags (diagnostics and completeness tests)."""
    return sorted(_WIRE_TAGS)


# ---------------------------------------------------------------------------
# Value tree <-> wire tree
# ---------------------------------------------------------------------------


def _tagged(tag: str, body: Any) -> dict:
    return {TAG_KEY: tag, "v": body}


def to_wire(obj: Any) -> Any:
    """Lower a payload object to the jsonable wire tree."""
    if obj is None or obj is True or obj is False:
        return obj
    kind = type(obj)
    if kind is str:
        return obj
    if kind is int:
        if _INT_MIN <= obj <= _INT_MAX:
            return obj
        return _tagged("bigint", str(obj))
    if kind is float:
        if math.isfinite(obj):
            return obj
        return _tagged("float", repr(obj))
    if kind is dict:
        if all(type(key) is str for key in obj) and TAG_KEY not in obj:
            return {key: to_wire(value) for key, value in obj.items()}
        return _tagged("map", [[to_wire(key), to_wire(value)] for key, value in obj.items()])
    if kind is list:
        return [to_wire(item) for item in obj]
    if kind is tuple:
        return _tagged("tuple", [to_wire(item) for item in obj])
    if kind in (bytes, bytearray):
        return _tagged("bytes", base64.b64encode(bytes(obj)).decode("ascii"))
    if kind in (set, frozenset):
        # Set iteration order is hash-randomized across processes; a sorted
        # rendering keeps encodings byte-stable for identical sets.
        items = sorted((to_wire(item) for item in obj), key=repr)
        return _tagged("set" if kind is set else "frozenset", items)
    if isinstance(obj, BaseException):
        obj = envelope_from_exception(obj)
        kind = ErrorEnvelope
    wire_type = _WIRE_TYPES.get(kind)
    if wire_type is None:
        raise CodecError(
            f"type {type(obj).__qualname__} is not wire-encodable; register it "
            f"with repro.net.codec.register_wire_type"
        )
    return _tagged(wire_type.tag, wire_type.pack(obj, to_wire))


_CONTAINER_TAGS = {
    "bigint": lambda body, dec: int(body),
    "float": lambda body, dec: float(body),
    "bytes": lambda body, dec: base64.b64decode(body.encode("ascii")),
    "tuple": lambda body, dec: tuple(dec(item) for item in body),
    "set": lambda body, dec: {dec(item) for item in body},
    "frozenset": lambda body, dec: frozenset(dec(item) for item in body),
    "map": lambda body, dec: {dec(key): dec(value) for key, value in body},
}


def from_wire(wire: Any) -> Any:
    """Rebuild a payload object from its wire tree."""
    kind = type(wire)
    if kind is list:
        return [from_wire(item) for item in wire]
    if kind is not dict:
        return wire
    tag = wire.get(TAG_KEY)
    if tag is None:
        return {key: from_wire(value) for key, value in wire.items()}
    body = wire.get("v")
    container = _CONTAINER_TAGS.get(tag)
    if container is not None:
        try:
            return container(body, from_wire)
        except CodecError:
            raise
        except Exception as exc:  # noqa: BLE001 - attacker-controlled body
            raise CodecError(
                f"malformed body for container tag {tag!r}: {exc}"
            ) from exc
    wire_type = _WIRE_TAGS.get(tag)
    if wire_type is None:
        raise CodecError(f"unknown wire tag {tag!r}; peer speaks a newer protocol?")
    try:
        return wire_type.unpack(body, from_wire)
    except CodecError:
        raise
    except Exception as exc:  # noqa: BLE001 - a tagged body is wire input,
        # and unpack hooks index into it; any structural surprise an
        # attacker cooks up must surface as a typed decode error.
        raise CodecError(f"malformed body for wire tag {tag!r}: {exc}") from exc


# ---------------------------------------------------------------------------
# Structural payload copy (wire_fidelity="copy")
# ---------------------------------------------------------------------------

#: Types whose instances are immutable all the way down: shared, not copied.
_ATOMIC_TYPES = (type(None), bool, int, float, str, bytes, Address, MessageKind)

#: The copy fast path: exact types returned by reference.  Seeded with the
#: atomics; :func:`register_wire_type` adds every registered type declared
#: immutable (``copy=None`` — those were shared by their identity-copy
#: hook already, the set only skips the registry dispatch) and removes
#: types re-registered with a real copy hook.
_IMMUTABLE_LEAVES: set[type] = set(_ATOMIC_TYPES)


def copy_payload(obj: Any) -> Any:
    """A copy of ``obj`` with the aliasing a real wire would sever.

    Semantically equivalent to ``from_wire(to_wire(obj))`` but without the
    byte-level serialization: immutable values are shared, containers and
    mutable registered types are rebuilt.  Unknown objects fall back to
    :func:`copy.deepcopy`, so sim-mode tests may still route arbitrary
    payloads.

    This runs once per simulated delivery, so the common shapes take an
    exact-type fast path: immutable leaves (atomics plus identity-copy
    registered wire types) return by reference after one set lookup, and
    a tuple or frozenset whose items all copied to themselves is itself
    returned by reference — receivers cannot mutate either, so sharing
    the container is indistinguishable from rebuilding it.  Mutable
    containers (dict, list, set) are always rebuilt; that is the
    mutation-severing contract.  ``tests/test_copy_fastpath.py`` holds
    the property suite pinning equivalence with the structural copy.
    """
    kind = obj.__class__
    if kind in _IMMUTABLE_LEAVES:
        return obj
    if kind is dict:
        return {key: copy_payload(value) for key, value in obj.items()}
    if kind is list:
        return [copy_payload(item) for item in obj]
    if kind is tuple:
        copied = tuple(copy_payload(item) for item in obj)
        for original, item in zip(obj, copied):
            if item is not original:
                return copied
        return obj
    if kind is set:
        return {copy_payload(item) for item in obj}
    if kind is frozenset:
        copied = [copy_payload(item) for item in obj]
        for original, item in zip(obj, copied):
            if item is not original:
                return frozenset(copied)
        return obj
    if isinstance(obj, _ATOMIC_TYPES):
        return obj  # atomic subclasses (enums, bool/str subtypes)
    wire_type = _WIRE_TYPES.get(kind)
    if wire_type is not None:
        return wire_type.copy(obj, copy_payload)
    if isinstance(obj, BaseException):
        return obj  # error payloads: reconstructed via envelopes, never mutated
    return _copy.deepcopy(obj)


def copy_message(message: Message) -> Message:
    """The message the destination receives: same fields, unshared payload."""
    payload = copy_payload(message.payload)
    if payload is message.payload:
        return message
    return Message(
        source=message.source,
        destination=message.destination,
        kind=message.kind,
        method=message.method,
        payload=payload,
        request_id=message.request_id,
        is_error=message.is_error,
        sent_at=message.sent_at,
    )


# ---------------------------------------------------------------------------
# Envelopes and frames
# ---------------------------------------------------------------------------


def _dumps(obj: Any) -> bytes:
    if msgpack is not None:
        return msgpack.packb(obj, use_bin_type=True)
    return json.dumps(obj, separators=(",", ":"), ensure_ascii=False).encode("utf-8")


def _loads(data: bytes) -> Any:
    if not data:
        raise CodecError("empty wire frame")
    if data[:1] == b"{":
        try:
            return json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CodecError(f"malformed JSON frame: {exc}") from exc
    if msgpack is None:
        raise CodecError(
            "received a msgpack frame but msgpack is not installed on this peer"
        )
    try:
        return msgpack.unpackb(data, raw=False, strict_map_key=False)
    except Exception as exc:  # noqa: BLE001 - msgpack raises its own family
        raise CodecError(f"malformed msgpack frame: {exc}") from exc


def _envelope(kind: str, wire: Any) -> bytes:
    return _dumps({"v": WIRE_VERSION, "k": kind, "d": wire})


def _open_envelope(data: bytes) -> tuple[str, Any]:
    envelope = _loads(data)
    if not isinstance(envelope, dict) or "v" not in envelope:
        raise CodecError("frame is not a wire envelope")
    version = envelope["v"]
    if version != WIRE_VERSION:
        raise CodecError(
            f"unsupported wire version {version!r} (this peer speaks {WIRE_VERSION})"
        )
    return envelope.get("k", "payload"), envelope.get("d")


def encode(obj: Any) -> bytes:
    """Serialize one payload object (not a whole message)."""
    return _envelope("payload", to_wire(obj))


def decode(data: bytes) -> Any:
    """Inverse of :func:`encode`."""
    kind, wire = _open_envelope(data)
    if kind != "payload":
        raise CodecError(f"expected a payload envelope, got {kind!r}")
    return from_wire(wire)


def encode_message(message: Message) -> bytes:
    """Serialize a complete :class:`~repro.net.message.Message`."""
    return _envelope("message", to_wire(message))


def decode_message(data: bytes) -> Message:
    """Inverse of :func:`encode_message`."""
    kind, wire = _open_envelope(data)
    if kind != "message":
        raise CodecError(f"expected a message envelope, got {kind!r}")
    message = from_wire(wire)
    if not isinstance(message, Message):
        raise CodecError(f"message envelope decoded to {type(message).__qualname__}")
    return message


def encode_hello(process: str) -> bytes:
    """The first frame of every wire connection: version + identity."""
    return _envelope("hello", {"process": process, "format": WIRE_FORMAT})


def decode_any(data: bytes) -> tuple[str, Any]:
    """Dispatch helper for connection readers: ``(kind, decoded body)``.

    ``kind`` is ``"hello"`` (body: the plain info dict), ``"message"``
    (body: the :class:`Message`) or ``"payload"`` (body: the object).
    """
    kind, wire = _open_envelope(data)
    if kind == "hello":
        if not isinstance(wire, dict):
            raise CodecError("malformed hello frame")
        return kind, wire
    if kind == "message":
        message = from_wire(wire)
        if not isinstance(message, Message):
            raise CodecError(
                f"message envelope decoded to {type(message).__qualname__}"
            )
        return kind, message
    if kind != "payload":
        raise CodecError(f"unknown envelope kind {kind!r}")
    return "payload", from_wire(wire)


def frame(data: bytes) -> bytes:
    """Prefix ``data`` with its 4-byte big-endian length."""
    if len(data) > MAX_FRAME_SIZE:
        raise CodecError(f"frame of {len(data)} bytes exceeds {MAX_FRAME_SIZE}")
    return len(data).to_bytes(FRAME_HEADER_SIZE, "big") + data


class FrameDecoder:
    """Incremental splitter of a byte stream into frames.

    Feed arbitrary chunks (as a socket produces them); complete frame
    bodies come back in order.  A length prefix above the size bound
    raises :class:`~repro.errors.CodecError` — the stream is corrupt and
    the connection should be dropped.
    """

    def __init__(self, max_frame_size: int = MAX_FRAME_SIZE) -> None:
        self.max_frame_size = max_frame_size
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[bytes]:
        """Consume ``data``; return every frame body completed by it."""
        self._buffer.extend(data)
        frames: list[bytes] = []
        while True:
            if len(self._buffer) < FRAME_HEADER_SIZE:
                return frames
            size = int.from_bytes(self._buffer[:FRAME_HEADER_SIZE], "big")
            if size > self.max_frame_size:
                raise CodecError(
                    f"incoming frame of {size} bytes exceeds {self.max_frame_size}"
                )
            end = FRAME_HEADER_SIZE + size
            if len(self._buffer) < end:
                return frames
            frames.append(bytes(self._buffer[FRAME_HEADER_SIZE:end]))
            del self._buffer[:end]

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buffer)


# ---------------------------------------------------------------------------
# Net-layer wire types (higher layers register their own at import time)
# ---------------------------------------------------------------------------

register_wire_type(
    Address,
    "addr",
    pack=lambda obj, enc: [obj.name, obj.site],
    unpack=lambda body, dec: Address(body[0], body[1]),
)

register_wire_type(
    MessageKind,
    "kind",
    pack=lambda obj, enc: obj.value,
    unpack=lambda body, dec: MessageKind(body),
)

register_wire_type(
    ErrorEnvelope,
    "error",
    pack=lambda obj, enc: [obj.code, obj.message, [enc(a) for a in obj.args], obj.debug],
    unpack=lambda body, dec: ErrorEnvelope(
        code=body[0],
        message=body[1],
        args=tuple(dec(item) for item in body[2]),
        debug=body[3],
    ),
)

register_wire_type(
    Message,
    "msg",
    pack=lambda obj, enc: [
        enc(obj.source),
        enc(obj.destination),
        enc(obj.kind),
        obj.method,
        enc(obj.payload),
        obj.request_id,
        obj.is_error,
        obj.sent_at,
    ],
    unpack=lambda body, dec: Message(
        source=dec(body[0]),
        destination=dec(body[1]),
        kind=dec(body[2]),
        method=body[3],
        payload=dec(body[4]),
        request_id=body[5],
        is_error=body[6],
        sent_at=body[7],
    ),
    copy=lambda obj, copier: copy_message(obj),
)
