"""The Master-key peer: patch timestamp validation and publication.

Every DHT node hosts a :class:`MasterService`; the node acts as Master-key
peer for the documents whose ``ht(key)`` falls into its responsibility
interval.  The service implements the heart of P2P-LTR (Section 3 of the
paper):

* ``ltr_validate_and_publish`` — the patch timestamp validation procedure.
  If the proposed timestamp equals ``last-ts + 1`` the Master publishes the
  patch at the Log-Peers (``sendToPublish``), advances ``last-ts`` through
  the timestamp authority (which also replicates it to the Master-key-Succ)
  and acknowledges the user peer with the validated timestamp.  Otherwise it
  answers ``behind`` with the current ``last-ts`` so the user peer runs the
  retrieval procedure first.
* Per-document serialization — concurrent validation requests for the same
  document are served strictly one after the other, "a new timestamp for a
  given document d is provided after the replication of the previous
  timestamped patch on d".
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Optional

from ..chord import HashFunctionFamily, NodeService
from ..dht import ChordDhtClient
from ..errors import (
    AuthenticationError,
    CheckpointUnavailable,
    NodeUnreachable,
    PatchUnavailable,
    RequestTimeout,
)
from ..kts import TimestampAuthority
from ..ot import Document, InsertLine
from ..p2plog import Checkpoint, LogEntry, P2PLogClient, sign_checkpoint, verify_commit
from ..runtime import FifoLock
from .config import LtrConfig
from .protocol import BatchValidationResult, ValidationResult

#: ``(checkpoint ts, snapshot lines or None)`` jobs scheduled inside the
#: per-document critical section and executed after the lock is released.
CheckpointJob = tuple[int, Optional[list[str]]]


class MasterService(NodeService):
    """Per-node implementation of the Master-key peer role."""

    name = "ltr-master"

    def __init__(self, config: Optional[LtrConfig] = None,
                 hash_family: Optional[HashFunctionFamily] = None) -> None:
        super().__init__()
        self.config = config if config is not None else LtrConfig()
        self._hash_family = hash_family
        self.log: Optional[P2PLogClient] = None
        self.authority: Optional[TimestampAuthority] = None
        self._locks: dict[str, FifoLock] = {}
        self.validations_ok = 0
        self.validations_behind = 0
        self.validations_rejected = 0
        self.validations_auth_rejected = 0
        self.patches_published = 0
        self.batches_ok = 0
        self.batches_behind = 0
        self.batches_rejected = 0
        self.batches_auth_rejected = 0
        self.batch_edits_published = 0
        # Fault-injection knob, set by the ``MasterEquivocation`` nemesis
        # action: while positive, each successful (unbatched) validation
        # additionally overwrites the entry's *secondary* log placements
        # with a forked copy, so the peer sets reading h1 and h2..hn
        # observe diverging timestamp sequences.  Never set in production.
        self.equivocate_next = 0
        self.equivocations = 0
        # Checkpointing state: the materialized document view this Master
        # maintains by applying each patch it validates (rebuilt from
        # checkpoint + log after a takeover), and the per-key timestamp of
        # the last checkpoint written here (0 / unknown after a takeover,
        # which merely makes the next checkpoint come early).
        self._views: dict[str, Document] = {}
        self._last_checkpoint_ts: dict[str, int] = {}
        self._checkpoint_locks: dict[str, FifoLock] = {}
        self.checkpoints_written = 0
        self.checkpoint_rebuilds = 0
        self.checkpoint_placements_removed = 0

    # -- NodeService wiring ------------------------------------------------------

    def register_handlers(self, node) -> None:  # noqa: D401 - see base class
        if self._hash_family is None:
            self._hash_family = HashFunctionFamily.create(
                self.config.log_replication_factor, bits=node.config.bits
            )
        if self.config.auth_enabled:
            from ..p2plog import verify_checkpoint, verify_entry

            secret = self.config.auth_secret
            entry_verifier = lambda entry: verify_entry(secret, entry)  # noqa: E731
            checkpoint_verifier = lambda ckpt: verify_checkpoint(secret, ckpt)  # noqa: E731
        else:
            entry_verifier = None
            checkpoint_verifier = None
        self.log = P2PLogClient(
            ChordDhtClient(node),
            self._hash_family,
            max_parallel=self.config.max_parallel_fetches,
            entry_verifier=entry_verifier,
            checkpoint_verifier=checkpoint_verifier,
        )
        node.rpc.expose("ltr_validate_and_publish", self.validate_and_publish)
        node.rpc.expose("ltr_validate_and_publish_batch", self.validate_and_publish_batch)
        node.rpc.expose("ltr_last_ts", self.handle_last_ts)

    @property
    def hash_family(self) -> HashFunctionFamily:
        """The replication hash family ``Hr`` used for log placement."""
        if self._hash_family is None:
            raise RuntimeError("MasterService used before being attached to a node")
        return self._hash_family

    def _authority(self) -> TimestampAuthority:
        if self.authority is None:
            service = self.node.service("kts") if self.node is not None else None
            if service is None:
                raise RuntimeError(
                    "MasterService requires a TimestampAuthority ('kts') service "
                    "on the same node"
                )
            self.authority = service
        return self.authority

    def _lock_for(self, key: str) -> FifoLock:
        lock = self._locks.get(key)
        if lock is None:
            lock = FifoLock(self.node.runtime)
            self._locks[key] = lock
        return lock

    # -- RPC handlers ---------------------------------------------------------------

    def handle_last_ts(self, key: str) -> int:
        """Return ``last-ts`` for ``key`` (0 when no patch was ever validated)."""
        return self._authority().last_ts(key)

    def validate_and_publish(self, key: str, ts: int, patch: Any, author: str = "unknown",
                             base_ts: Optional[int] = None,
                             signature: Optional[str] = None):
        """Validate a tentative patch timestamp and publish the patch.

        Generator RPC handler (it performs DHT puts while publishing).
        Returns a :class:`~repro.core.protocol.ValidationResult` payload.
        When ``auth_enabled``, ``signature`` must be the author's HMAC over
        the commit (see :mod:`repro.p2plog.auth`); a missing or invalid
        signature raises :class:`~repro.errors.AuthenticationError` before
        any timestamp state is consulted.
        """
        lock = self._lock_for(key)
        retract: list[LogEntry] = []
        checkpoints: list[CheckpointJob] = []
        yield from lock.acquire()
        try:
            payload = yield from self._validate_one_locked(
                key, ts, patch, author, base_ts, retract, checkpoints, signature
            )
        finally:
            lock.release()
        if retract:
            # Cleanup of a rejected in-flight publish happens outside the
            # critical section — the removal round-trips need no
            # serialization and must not stall queued proposers.
            yield from self.log.retract_many(retract)
        yield from self._run_checkpoint_jobs(key, checkpoints)
        return payload

    def _validate_one_locked(self, key: str, ts: int, patch: Any, author: str,
                             base_ts: Optional[int], retract: list[LogEntry],
                             checkpoints: list[CheckpointJob],
                             signature: Optional[str] = None):
        """The critical section of :meth:`validate_and_publish`."""
        node = self.node
        authority = self._authority()
        if self.config.auth_enabled and not verify_commit(
            self.config.auth_secret, signature, key, ts, patch, author, base_ts
        ):
            self.validations_auth_rejected += 1
            node.runtime.trace.annotate(
                node.runtime.now,
                "ltr-master",
                f"{node.address.name} rejects {key}@{ts} from {author}: "
                f"bad or missing commit signature",
            )
            raise AuthenticationError(
                f"commit {key!r}@{ts} from {author!r} failed signature verification",
                key=key,
                ts=ts,
            )
        last_ts = authority.last_ts(key)
        if ts != last_ts + 1:
            self.validations_behind += 1
            node.runtime.trace.annotate(
                node.runtime.now,
                "ltr-master",
                f"{node.address.name} rejects {key}@{ts} from {author} "
                f"(last-ts={last_ts})",
            )
            return ValidationResult.behind(last_ts).to_payload()

        entry = LogEntry(
            document_key=key,
            ts=ts,
            patch=patch,
            author=author,
            published_at=node.runtime.now,
            base_ts=base_ts,
            # The author's proof travels with every replica; metadata is
            # excluded from entry equality, so signed and unsigned copies
            # compare the same everywhere else.
            metadata={"sig": signature} if signature is not None else {},
        )
        replicas = 0
        if self.config.publish_before_ack:
            replicas = yield from self.log.publish(entry)
        if self._lost_master_role(key, last_ts):
            # Re-election while the publish was in flight: advancing the
            # (handed-off) counter would fork the timestamp sequence.
            self.validations_rejected += 1
            node.runtime.trace.annotate(
                node.runtime.now,
                "ltr-master",
                f"{node.address.name} rejects in-flight patch for {key}: "
                f"master role moved during publication",
            )
            if self.config.publish_before_ack:
                retract.append(entry)
            return ValidationResult.reelection(authority.last_ts(key)).to_payload()
        validated_ts = authority.gen_ts(key)
        if not self.config.publish_before_ack:
            replicas = yield from self.log.publish(entry)
        if self.equivocate_next > 0:
            yield from self._equivocate(entry)
        self._note_published(key, [patch], validated_ts, checkpoints)
        self.validations_ok += 1
        self.patches_published += 1
        node.runtime.trace.annotate(
            node.runtime.now,
            "ltr-master",
            f"{node.address.name} validated {key}@{validated_ts} from {author} "
            f"({replicas} log replicas)",
        )
        return ValidationResult.ok(validated_ts, replicas).to_payload()

    def validate_and_publish_batch(self, key: str, ts: int, patches: Any,
                                   author: str = "unknown",
                                   base_ts: Optional[int] = None,
                                   signatures: Optional[Any] = None):
        """Validate and publish a whole commit batch under one critical section.

        Generator RPC handler, the batched counterpart of
        :meth:`validate_and_publish`: if the proposed base timestamp equals
        ``last-ts + 1`` the Master publishes *all* of the batch's patches at
        the Log-Peers through one grouped write per responsible peer
        (:meth:`~repro.p2plog.P2PLogClient.append_many`) and consumes one
        dense timestamp range through
        :meth:`~repro.kts.TimestampAuthority.next_timestamps` — one KTS
        advance and one replica push for the whole batch.

        The batch is atomic: it either commits completely or not at all.  In
        particular, when a re-election moves the Master-key role away while
        the (yielding) log publication is in flight, the handler detects the
        hand-over before advancing any timestamp and answers ``rejected``
        without consuming the range — the user peer re-proposes, and routing
        delivers the retry to the new Master.  Without that guard the old
        Master would resurrect a counter it no longer owns and fork the
        timestamp sequence (see ``tests/test_core_master.py``).
        """
        lock = self._lock_for(key)
        retract: list[LogEntry] = []
        checkpoints: list[CheckpointJob] = []
        yield from lock.acquire()
        try:
            try:
                payload = yield from self._validate_batch_locked(
                    key, ts, patches, author, base_ts, retract, checkpoints,
                    signatures,
                )
            finally:
                lock.release()
        except PatchUnavailable:
            # Partial publish failure: what landed carries timestamps that
            # were never allocated.  Clean up *after* releasing the lock —
            # the removal round-trips need no serialization, and holding
            # the lock through them would stall every other proposer.
            if retract:
                yield from self.log.retract_many(retract)
            raise
        if retract:
            yield from self.log.retract_many(retract)
        yield from self._run_checkpoint_jobs(key, checkpoints)
        return payload

    def _validate_batch_locked(self, key: str, ts: int, patches: Any, author: str,
                               base_ts: Optional[int], retract: list[LogEntry],
                               checkpoints: list[CheckpointJob],
                               signatures: Optional[Any] = None):
        """The critical section of :meth:`validate_and_publish_batch`.

        Runs with the per-document lock held.  Entries that must be removed
        from the log (rejected or partially-failed publishes) are appended
        to ``retract``; the caller performs the removal after the lock is
        released.
        """
        node = self.node
        authority = self._authority()
        patches = list(patches)
        if not patches:
            raise ValueError(f"empty commit batch proposed for {key!r}")
        sigs: list[Optional[str]] = (
            list(signatures) if signatures is not None else [None] * len(patches)
        )
        if self.config.auth_enabled:
            valid = len(sigs) == len(patches) and all(
                verify_commit(
                    self.config.auth_secret, sigs[offset], key, ts + offset,
                    patches[offset], author,
                    (base_ts + offset) if base_ts is not None else None,
                )
                for offset in range(len(patches))
            )
            if not valid:
                self.batches_auth_rejected += 1
                node.runtime.trace.annotate(
                    node.runtime.now,
                    "ltr-master",
                    f"{node.address.name} rejects batch {key}@{ts}"
                    f"(+{len(patches)}) from {author}: bad or missing "
                    f"commit signatures",
                )
                raise AuthenticationError(
                    f"batch {key!r}@{ts}(+{len(patches)}) from {author!r} "
                    f"failed signature verification",
                    key=key,
                    ts=ts,
                )
        last_ts = authority.last_ts(key)
        if ts != last_ts + 1:
            self.batches_behind += 1
            node.runtime.trace.annotate(
                node.runtime.now,
                "ltr-master",
                f"{node.address.name} rejects batch {key}@{ts}(+{len(patches)}) "
                f"from {author} (last-ts={last_ts})",
            )
            return BatchValidationResult.behind(last_ts).to_payload()

        entries = [
            LogEntry(
                document_key=key,
                ts=ts + offset,
                patch=patch,
                author=author,
                published_at=node.runtime.now,
                # The chain: patch `offset` is expressed against the
                # state produced by its predecessor, i.e. `offset`
                # timestamps past the batch's base.
                base_ts=(base_ts + offset) if base_ts is not None else None,
                metadata=(
                    {"sig": sigs[offset]} if sigs[offset] is not None else {}
                ),
            )
            for offset, patch in enumerate(patches)
        ]
        replicas = 0
        if self.config.publish_before_ack:
            try:
                per_entry = yield from self.log.append_many(entries)
            except PatchUnavailable:
                # Partial publish: what landed carries timestamps that were
                # never allocated — schedule it for removal, then propagate
                # so the proposer keeps its batch staged and retries.
                retract.extend(entries)
                raise
            replicas = min(per_entry)
        # Re-election check before any timestamp is consumed: the publish
        # above yields, and even the lock acquisition can span a takeover,
        # so the Master role may have moved since the request arrived (in
        # either ordering mode).
        if self._lost_master_role(key, last_ts):
            self.batches_rejected += 1
            node.runtime.trace.annotate(
                node.runtime.now,
                "ltr-master",
                f"{node.address.name} rejects in-flight batch for {key}: "
                f"master role moved during publication",
            )
            if self.config.publish_before_ack:
                # The published entries carry timestamps that were never
                # allocated; retract them so no reader can observe them
                # before the new Master reuses the range.
                retract.extend(entries)
            return BatchValidationResult.reelection(
                authority.last_ts(key)
            ).to_payload()
        first_ts = authority.next_timestamps(key, len(patches))
        if not self.config.publish_before_ack:
            # Timestamps are consumed at this point, so a partial publish
            # failure must NOT retract what landed (that would turn an
            # incomplete prefix into a permanent gap); the error propagates
            # and the proposer's restaged batch re-publishes under the same
            # semantics as the unbatched ack-before-publish ablation.
            per_entry = yield from self.log.append_many(entries)
            replicas = min(per_entry)
        self._note_published(key, patches, first_ts, checkpoints)
        self.batches_ok += 1
        self.batch_edits_published += len(patches)
        node.runtime.trace.annotate(
            node.runtime.now,
            "ltr-master",
            f"{node.address.name} validated batch {key}@{first_ts}.."
            f"{first_ts + len(patches) - 1} from {author} "
            f"({replicas} log replicas)",
        )
        return BatchValidationResult.ok(
            first_ts, first_ts + len(patches) - 1, replicas
        ).to_payload()

    def _equivocate(self, entry: LogEntry):
        """Fault injection: serve a forked copy of ``entry`` to part of the ring.

        Overwrites every *secondary* placement (``h2..hn``) of the entry
        with a copy whose patch was altered after signing — the peer set
        whose reads land on ``h1`` and the (disjoint) set falling back to
        the other placements observe diverging timestamp sequences.  The
        forked copy keeps the original signature, so signed-mode readers
        reject it on retrieval and the cross-copy comparison in
        ``repro.check`` names this Master.  Armed by the
        ``MasterEquivocation`` nemesis action via :attr:`equivocate_next`.
        """
        self.equivocate_next -= 1
        self.equivocations += 1
        forked_patch = entry.patch.with_operations(
            tuple(entry.patch.operations)
            + (InsertLine(0, f"<equivocation fork ts={entry.ts}>"),)
        )
        forked = replace(entry, patch=forked_patch)
        log_key = entry.log_key
        for index, function in enumerate(self.hash_family):
            if index == 0:
                continue
            storage_key = function.placement_key(log_key)
            try:
                yield from self.log.dht.put(storage_key, forked, key_id=function(log_key))
            except (RequestTimeout, NodeUnreachable):
                continue
        self.node.runtime.trace.annotate(
            self.node.runtime.now,
            "ltr-master",
            f"{self.node.address.name} EQUIVOCATES on {entry.document_key}@{entry.ts}: "
            f"secondary placements forked",
        )

    def _lost_master_role(self, key: str, expected_last_ts: int) -> bool:
        """Did a re-election move the Master-key role away mid-request?

        The log publication yields (and even the lock acquisition can span a
        takeover), so a join can take over the arc holding ``ht(key)`` —
        hand-off moves the counter away — while a validation is in flight.
        Advancing the counter afterwards would create a *local* stale copy
        diverging from the new Master's authoritative one and fork the
        timestamp sequence.  This predicate re-checks, before any timestamp
        is consumed, that this node still holds the authoritative counter
        and that ``last-ts`` is untouched; callers reject the whole request
        atomically when it returns ``True``.
        """
        node = self.node
        authority = self._authority()
        owned = authority.owns_counter(key)
        still_responsible = (
            node is not None
            and node.alive
            # A hand-off downgrades the local counter to a replica before the
            # predecessor pointer reflects the joiner, so the ownership check
            # must come first; when no counter materialised yet (last-ts 0),
            # fall back to the ring's responsibility interval.
            and (owned if owned is not None
                 else node.is_responsible_for(authority.placement_id(key)))
        )
        return not (still_responsible and authority.last_ts(key) == expected_last_ts)

    # -- checkpointing -----------------------------------------------------------------

    def _note_published(self, key: str, patches: Any, first_ts: int,
                        checkpoints: list[CheckpointJob]) -> None:
        """Track the materialized view and schedule a due checkpoint.

        Runs inside the per-document critical section (cheap, local-only):
        every validated patch is applied to this Master's materialized view
        of the document, and when the published timestamps cross the
        checkpoint interval a ``(ts, lines)`` job is appended to
        ``checkpoints`` — the snapshot lines are captured *here*, while no
        concurrent proposal can advance the document, and the DHT writes
        happen after the lock is released.
        """
        if not self.config.checkpoint_enabled:
            return
        view = self._views.get(key)
        ts = first_ts
        for patch in patches:
            if view is None and ts == 1:
                view = Document(key=key)
                self._views[key] = view
            if view is not None:
                if view.applied_ts == ts - 1:
                    view.apply_patch(patch, ts=ts)
                else:
                    # A takeover left a view that does not line up with the
                    # validated sequence; drop it and rebuild from the
                    # checkpoint + log at the next checkpoint.
                    self._views.pop(key, None)
                    view = None
            ts += 1
        last_ts = first_ts + len(patches) - 1
        if last_ts - self._last_checkpoint_ts.get(key, 0) >= self.config.checkpoint_interval:
            lines = (
                list(view.lines)
                if view is not None and view.applied_ts == last_ts
                else None
            )
            checkpoints.append((last_ts, lines))
            # Recorded eagerly so proposals queued behind this one do not
            # schedule the same checkpoint again; a failed write simply
            # waits for the next interval.
            self._last_checkpoint_ts[key] = last_ts

    def _checkpoint_lock_for(self, key: str) -> FifoLock:
        """The per-document lock serializing checkpoint-index updates.

        Deliberately distinct from the validation lock: index maintenance
        performs DHT round-trips and must not stall queued proposers, but
        two concurrent read-modify-writes of the same index record would
        lose whichever update lands first.
        """
        lock = self._checkpoint_locks.get(key)
        if lock is None:
            lock = FifoLock(self.node.runtime)
            self._checkpoint_locks[key] = lock
        return lock

    def _run_checkpoint_jobs(self, key: str, checkpoints: list[CheckpointJob]):
        """Execute scheduled checkpoint writes (process, outside the lock)."""
        for ckpt_ts, lines in checkpoints:
            yield from self._write_checkpoint(key, ckpt_ts, lines)

    def _write_checkpoint(self, key: str, ts: int, lines: Optional[list[str]]):
        """Serialized wrapper around :meth:`_write_checkpoint_locked`."""
        lock = self._checkpoint_lock_for(key)
        yield from lock.acquire()
        try:
            result = yield from self._write_checkpoint_locked(key, ts, lines)
        finally:
            lock.release()
        return result

    def _write_checkpoint_locked(self, key: str, ts: int, lines: Optional[list[str]]):
        """Materialize, store, index and garbage-collect checkpoints (process).

        ``lines`` is the snapshot content captured under the lock, or
        ``None`` when this Master has no materialized view at ``ts`` (fresh
        takeover) — then the state is rebuilt from the newest reachable
        checkpoint plus the log suffix.  The retained-checkpoint index is
        re-read from the DHT on every write (checkpoints are rare) so an
        interim Master's checkpoints are never forgotten, and everything
        sliding out of the retention window is removed from the DHT — the
        log's compaction step.  Best effort throughout: on any failure the
        system simply keeps the previous checkpoints.
        """
        node = self.node
        if lines is None:
            lines = yield from self._rebuild_lines(key, ts)
            if lines is None:
                return None  # log suffix unavailable; retry at the next interval
        checkpoint = Checkpoint(
            document_key=key,
            ts=ts,
            lines=tuple(lines),
            created_at=node.runtime.now,
            author=node.address.name,
        )
        if self.config.auth_enabled:
            checkpoint.metadata["sig"] = sign_checkpoint(
                self.config.auth_secret, checkpoint
            )
        try:
            yield from self.log.publish_checkpoint(checkpoint)
        except CheckpointUnavailable:
            return None
        self.checkpoints_written += 1
        self._last_checkpoint_ts[key] = max(self._last_checkpoint_ts.get(key, 0), ts)
        stored_index = yield from self.log.fetch_checkpoint_index(key)
        # Union merge, newest first: an entry *newer* than this write (an
        # interleaved or out-of-order job) must survive the update, or the
        # DHT would keep an unindexed — hence never-collected — snapshot.
        merged = tuple(sorted(set(stored_index or ()) | {ts}, reverse=True))
        keep = merged[:self.config.checkpoint_retention]
        drop = merged[self.config.checkpoint_retention:]
        yield from self.log.publish_checkpoint_index(key, keep)
        for old_ts in drop:
            removed = yield from self.log.gc_checkpoint(key, old_ts)
            self.checkpoint_placements_removed += removed
        node.runtime.trace.annotate(
            node.runtime.now,
            "ltr-master",
            f"{node.address.name} checkpointed {key}@{ts} "
            f"(retained {list(keep)}, collected {list(drop)})",
        )
        return ts

    def _rebuild_lines(self, key: str, ts: int) -> Any:
        """Reconstruct the document state at ``ts`` from checkpoint + log (process).

        Returns the line list, or ``None`` when some log suffix entry is
        unavailable.  The rebuilt state is adopted as the live view so
        subsequent validations extend it incrementally.
        """
        base = Document(key=key)
        checkpoint = yield from self.log.latest_checkpoint(key, ts)
        if checkpoint is not None:
            base.lines = list(checkpoint.lines)
            base.applied_ts = checkpoint.ts
        if base.applied_ts < ts:
            try:
                entries = yield from self.log.fetch_range(
                    key, base.applied_ts + 1, ts,
                    grouped=self.config.grouped_fetch,
                )
            except PatchUnavailable:
                return None
            for entry in entries:
                base.apply_patch(entry.patch, ts=entry.ts)
        self.checkpoint_rebuilds += 1
        existing = self._views.get(key)
        if existing is None or existing.applied_ts < base.applied_ts:
            self._views[key] = base
        return list(base.lines)

    def force_checkpoint(self, key: str):
        """Materialize a checkpoint at the current ``last-ts`` (process driver).

        Used by scenario drivers and the fuzz harness to checkpoint at an
        arbitrary moment instead of waiting for the interval.  Returns the
        checkpoint timestamp, or ``None`` when nothing was published yet or
        the write could not complete.
        """
        ts = self._authority().last_ts(key)
        if ts < 1:
            return None
        view = self._views.get(key)
        lines = list(view.lines) if view is not None and view.applied_ts == ts else None
        result = yield from self._write_checkpoint(key, ts, lines)
        return result

    def gc_checkpoints(self, key: str):
        """Re-apply the retention window to the stored index (process driver).

        Normally a no-op (writes garbage-collect as they go); after churn
        it removes checkpoints an interim Master retained beyond the
        window.  Returns how many checkpoints were collected.
        """
        lock = self._checkpoint_lock_for(key)
        yield from lock.acquire()
        try:
            index = yield from self.log.fetch_checkpoint_index(key)
            if not index:
                return 0
            ordered = tuple(sorted(index, reverse=True))
            keep = ordered[:self.config.checkpoint_retention]
            drop = ordered[self.config.checkpoint_retention:]
            if not drop:
                return 0
            yield from self.log.publish_checkpoint_index(key, keep)
            for old_ts in drop:
                removed = yield from self.log.gc_checkpoint(key, old_ts)
                self.checkpoint_placements_removed += removed
            return len(drop)
        finally:
            lock.release()

    # -- diagnostics ------------------------------------------------------------------

    def keys_mastered(self) -> dict[str, int]:
        """Documents this node currently is the Master-key peer for."""
        return self._authority().managed_keys()

    def statistics(self) -> dict[str, Any]:
        """Counters for the experiment reports."""
        stats = {
            "validations_ok": self.validations_ok,
            "validations_behind": self.validations_behind,
            "validations_rejected": self.validations_rejected,
            "validations_auth_rejected": self.validations_auth_rejected,
            "patches_published": self.patches_published,
            "batches_ok": self.batches_ok,
            "batches_behind": self.batches_behind,
            "batches_rejected": self.batches_rejected,
            "batches_auth_rejected": self.batches_auth_rejected,
            "batch_edits_published": self.batch_edits_published,
            "equivocations": self.equivocations,
            "checkpoints_written": self.checkpoints_written,
            "checkpoint_rebuilds": self.checkpoint_rebuilds,
            "checkpoint_placements_removed": self.checkpoint_placements_removed,
            "keys_mastered": len(self.keys_mastered()) if self.node is not None else 0,
        }
        if self.log is not None:
            stats["log"] = self.log.statistics()
        return stats
