"""Timer cancellation and tombstone compaction (repro.sim.scheduler).

The calendar-queue kernel cancels timers lazily: ``Event.cancel()`` leaves a
tombstone that the scheduler drops in batch and compacts away once enough of
them accumulate.  These tests pin down the semantics (a cancelled timer never
fires, cancellation is idempotent) and the memory bound (a churn storm of
cancel-heavy timers must not grow the queue without bound), plus the one
production consumer that relies on retraction: the RPC layer cancelling a
request's watchdog when the response arrives first.
"""

from repro.net import Address, ConstantLatency, Network
from repro.net.rpc import RpcAgent
from repro.sim.scheduler import Simulator


# --------------------------------------------------------------- semantics --


def test_cancelled_timer_never_fires():
    sim = Simulator()
    fired = []
    timer = sim.timeout(5.0)
    timer.add_callback(lambda event: fired.append(event))
    assert timer.cancel() is True
    sim.run(until=10.0)
    assert fired == []
    assert timer.cancelled is True
    assert sim.pending_events == 0


def test_cancel_is_idempotent_and_refused_after_firing():
    sim = Simulator()
    timer = sim.timeout(1.0)
    assert timer.cancel() is True
    assert timer.cancel() is False  # already cancelled

    fired_timer = sim.timeout(1.0)
    sim.run(until=2.0)
    assert fired_timer.processed
    assert fired_timer.cancel() is False  # too late, it already fired


def test_cancelled_event_refuses_new_callbacks():
    sim = Simulator()
    timer = sim.timeout(1.0)
    timer.cancel()
    called = []
    timer.add_callback(lambda event: called.append(event))
    sim.run(until=2.0)
    assert called == []


def test_cancelling_one_timer_leaves_siblings_untouched():
    sim = Simulator()
    fired = []
    timers = [sim.timeout(1.0 + index * 0.001) for index in range(50)]
    for timer in timers:
        timer.add_callback(fired.append)
    for timer in timers[::2]:
        timer.cancel()
    sim.run(until=5.0)
    assert fired == timers[1::2]  # survivors fire in schedule order
    assert sim.pending_events == 0


def test_pending_events_excludes_tombstones():
    sim = Simulator()
    timers = [sim.timeout(10.0) for _ in range(20)]
    assert sim.pending_events == 20
    for timer in timers[:15]:
        timer.cancel()
    assert sim.pending_events == 5
    assert sim.tombstones == 15


# --------------------------------------------------------- churn-storm bound --


def test_churn_storm_of_cancelled_timers_is_compacted():
    """Regression: a cancel-heavy churn storm must not grow the queue.

    Before lazy cancellation + compaction the kernel kept every dead timer
    until its expiry, so queue size scaled with *scheduled* timers instead
    of *live* ones.  After each storm round the tombstone count must stay
    within one compaction threshold, and the queue must never hold more
    than live + threshold entries.
    """
    sim = Simulator()
    rounds, per_round = 40, 600  # 24k cancellations through a 1024 threshold
    for round_index in range(rounds):
        timers = [sim.timeout(300.0 + index * 1e-4) for index in range(per_round)]
        for timer in timers:
            timer.cancel()
        # A handful of live timers stay in flight across rounds.
        keeper = sim.timeout(300.0)
        keeper.add_callback(lambda _event: None)
        sim.run(until=sim.now + 0.01)
        assert sim.tombstones <= 2 * Simulator.COMPACT_MIN_TOMBSTONES
        assert sim.pending_events == round_index + 1  # only the keepers
    # Run the clock out: the keepers fire, nothing cancelled ever does.
    sim.run(until=sim.now + 400.0)
    assert sim.pending_events == 0
    assert sim.tombstones == 0
    assert sim.processed_events == rounds  # the keepers, and nothing dead


def test_interleaved_cancel_and_fire_storm_keeps_order():
    """Cancelling inside callbacks (the watchdog-reset pattern) stays sound."""
    sim = Simulator()
    fired = []

    def rearm(label, generation):
        if generation == 0:
            fired.append(label)
            return
        timer = sim.timeout(0.5)
        timer.add_callback(lambda _event: rearm(label, generation - 1))
        shadow = sim.timeout(0.25)  # cancelled from inside the callback chain
        shadow.add_callback(lambda _event: fired.append(("shadow", label)))
        shadow.cancel()

    for label in range(100):
        rearm(label, generation=5)
    sim.run(until=10.0)
    assert fired == list(range(100))
    assert sim.pending_events == 0


# ------------------------------------------------------------ RPC retraction --


def test_rpc_response_retracts_timeout_watchdog():
    """A settled request must cancel its watchdog, not let it expire."""
    sim = Simulator(seed=1)
    network = Network(sim, latency=ConstantLatency(0.005))
    client = RpcAgent(sim, network, Address("client"))
    server = RpcAgent(sim, network, Address("server"))
    server.expose("ping", lambda payload: payload + 1)

    replies = []

    def exchange():
        for value in range(200):
            reply = yield client.call(server.address, "ping", timeout=30.0,
                                      payload=value)
            replies.append(reply)

    sim.run(until=sim.process(exchange()))
    assert replies == [value + 1 for value in range(200)]
    # Every watchdog was retracted the moment its response arrived...
    assert client._timers == {}
    assert client._pending == {}
    # ...so no 30s timers linger: the queue drains well before the timeout.
    sim.run(until=sim.now + 60.0)
    assert sim.pending_events == 0


def test_rpc_offline_cancels_all_watchdogs():
    sim = Simulator(seed=2)
    network = Network(sim, latency=ConstantLatency(0.005))
    client = RpcAgent(sim, network, Address("client"))
    silent = Address("silent")  # never registered: requests just hang

    futures = [client.call(silent, "ping", timeout=120.0) for _ in range(25)]
    assert len(client._timers) == 25
    client.go_offline()
    assert client._timers == {}
    assert all(future.triggered for future in futures)
    sim.run(until=sim.now + 130.0)
    assert sim.pending_events == 0
