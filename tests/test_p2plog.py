"""Tests for the P2P-Log (repro.p2plog)."""

import pytest

from repro.chord import ChordConfig, ChordRing, HashFunctionFamily
from repro.dht import ChordDhtClient, LocalDht
from repro.errors import CheckpointUnavailable, PatchUnavailable
from repro.p2plog import (
    Checkpoint,
    LogEntry,
    P2PLogClient,
    make_checkpoint_key,
    make_log_key,
)
from repro.net import ConstantLatency
from repro.sim import Simulator

BITS = 32


def log_config(**overrides):
    defaults = dict(
        bits=BITS,
        successor_list_size=4,
        replication_factor=2,
        stabilize_interval=0.2,
        fix_fingers_interval=0.3,
        check_predecessor_interval=0.4,
    )
    defaults.update(overrides)
    return ChordConfig(**defaults)


def build_ring(node_count=8, seed=13):
    ring = ChordRing(config=log_config(), seed=seed, latency=ConstantLatency(0.002))
    ring.bootstrap(node_count)
    return ring


def run(ring, generator):
    return ring.sim.run(until=ring.sim.process(generator))


def make_entry(ts, key="doc", author="u1", patch=None):
    return LogEntry(document_key=key, ts=ts, patch=patch if patch is not None else f"patch-{ts}",
                    author=author)


# ---------------------------------------------------------------------------
# LogEntry
# ---------------------------------------------------------------------------


def test_log_entry_validation_and_log_key():
    entry = make_entry(3)
    assert entry.log_key == "doc#3"
    assert "doc@3" in entry.describe()
    with pytest.raises(ValueError):
        make_entry(0)
    with pytest.raises(ValueError):
        make_log_key("doc", 0)


def test_log_entry_equality_ignores_metadata():
    a = LogEntry("d", 1, "p", metadata={"x": 1})
    b = LogEntry("d", 1, "p", metadata={"y": 2})
    assert a == b


# ---------------------------------------------------------------------------
# publication and retrieval over LocalDht (pure client logic)
# ---------------------------------------------------------------------------


def test_publish_and_fetch_roundtrip_local():
    sim = Simulator()
    dht = LocalDht(sim)
    log = P2PLogClient(dht, HashFunctionFamily.create(3, bits=BITS))
    entry = make_entry(1)

    stored = sim.run(until=sim.process(log.publish(entry)))
    assert stored == 3
    assert len(dht) == 3  # three distinct placements

    fetched = sim.run(until=sim.process(log.fetch("doc", 1)))
    assert fetched == entry


def test_fetch_missing_entry_raises_local():
    sim = Simulator()
    log = P2PLogClient(LocalDht(sim), HashFunctionFamily.create(2, bits=BITS))
    with pytest.raises(PatchUnavailable):
        sim.run(until=sim.process(log.fetch("doc", 9)))


def test_fetch_range_in_order_local():
    sim = Simulator()
    log = P2PLogClient(LocalDht(sim), HashFunctionFamily.create(2, bits=BITS))
    for ts in range(1, 6):
        sim.run(until=sim.process(log.publish(make_entry(ts))))
    entries = sim.run(until=sim.process(log.fetch_range("doc", 2, 4)))
    assert [entry.ts for entry in entries] == [2, 3, 4]
    assert sim.run(until=sim.process(log.fetch_range("doc", 4, 2))) == []


def test_placements_are_distinct_and_prefixed():
    sim = Simulator()
    log = P2PLogClient(LocalDht(sim), HashFunctionFamily.create(3, bits=BITS))
    placements = log.placements("doc", 7)
    keys = [key for key, _ in placements]
    identifiers = [identifier for _, identifier in placements]
    assert len(set(keys)) == 3
    assert len(set(identifiers)) == 3
    assert all(key.endswith("doc#7") for key in keys)


def test_default_hash_family_uses_replication_factor():
    sim = Simulator()
    log = P2PLogClient(LocalDht(sim), replication_factor=4, bits=BITS)
    assert log.replication_factor == 4


# ---------------------------------------------------------------------------
# over the Chord ring
# ---------------------------------------------------------------------------


def test_publish_places_entries_at_responsible_log_peers():
    ring = build_ring()
    client = P2PLogClient(ChordDhtClient(ring.gateway()), HashFunctionFamily.create(3, bits=BITS))
    entry = make_entry(1, key="wiki:home")
    stored = run(ring, client.publish(entry))
    assert stored == 3
    for storage_key, identifier in client.placements("wiki:home", 1):
        owner = ring.responsible_node_for_id(identifier)
        assert owner.storage.value(storage_key) == entry


def test_fetch_from_any_peer_returns_same_entry():
    ring = build_ring()
    publisher = P2PLogClient(ChordDhtClient(ring.gateway()), HashFunctionFamily.create(2, bits=BITS))
    entry = make_entry(1, key="wiki:shared")
    run(ring, publisher.publish(entry))
    for name in ring.ring_order()[:4]:
        reader = P2PLogClient(ChordDhtClient(ring.node(name)), HashFunctionFamily.create(2, bits=BITS))
        assert run(ring, reader.fetch("wiki:shared", 1)) == entry


def test_entries_survive_log_peer_crash_with_multiple_placements():
    ring = build_ring(node_count=10)
    client = P2PLogClient(ChordDhtClient(ring.gateway()), HashFunctionFamily.create(3, bits=BITS))
    entry = make_entry(1, key="wiki:resilient")
    run(ring, client.publish(entry))
    ring.run_for(2)
    # crash the primary Log-Peer of the first placement
    _key, identifier = client.placements("wiki:resilient", 1)[0]
    victim = ring.responsible_node_for_id(identifier)
    gateway_name = next(
        name for name in ring.ring_order() if name != victim.address.name
    )
    ring.crash(victim.address.name)
    assert ring.wait_until_stable(max_time=90)
    reader = P2PLogClient(ChordDhtClient(ring.node(gateway_name)), HashFunctionFamily.create(3, bits=BITS))
    assert run(ring, reader.fetch("wiki:resilient", 1)) == entry


def test_availability_counts_placements():
    ring = build_ring()
    client = P2PLogClient(ChordDhtClient(ring.gateway()), HashFunctionFamily.create(3, bits=BITS))
    run(ring, client.publish(make_entry(1, key="wiki:avail")))
    assert run(ring, client.availability("wiki:avail", 1)) == 3
    assert run(ring, client.availability("wiki:avail", 2)) == 0


def test_statistics_track_publications_and_fallbacks():
    ring = build_ring()
    client = P2PLogClient(ChordDhtClient(ring.gateway()), HashFunctionFamily.create(2, bits=BITS))
    run(ring, client.publish(make_entry(1, key="wiki:stats")))
    run(ring, client.fetch("wiki:stats", 1))
    stats = client.statistics()
    assert stats["published_entries"] == 1
    assert stats["retrievals"] == 1
    assert stats["replication_factor"] == 2


def test_append_many_places_whole_batch_with_grouped_writes():
    ring = build_ring()
    client = P2PLogClient(ChordDhtClient(ring.gateway()), HashFunctionFamily.create(3, bits=BITS))
    entries = [make_entry(ts, key="wiki:batch") for ts in range(1, 6)]
    per_entry = run(ring, client.append_many(entries))
    assert per_entry == [3] * 5  # every entry got all |Hr| placements
    for ts in range(1, 6):
        assert run(ring, client.fetch("wiki:batch", ts)) == entries[ts - 1]
    stats = client.statistics()
    assert stats["published_entries"] == 5
    assert stats["batched_publishes"] == 1
    assert run(ring, client.append_many([])) == []


def test_fetch_span_groups_reads_and_matches_per_ts_fetch():
    """The grouped range read returns exactly what the per-ts loop returns."""
    ring = build_ring(node_count=10)
    client = P2PLogClient(ChordDhtClient(ring.gateway()), HashFunctionFamily.create(3, bits=BITS))
    entries = [make_entry(ts, key="wiki:span") for ts in range(1, 9)]
    run(ring, client.append_many(entries))
    ring.run_for(1.0)
    spanned = run(ring, client.fetch_range("wiki:span", 1, 8, grouped=True))
    assert spanned == entries
    assert client.span_fetches == 1
    looped = run(ring, client.fetch_range("wiki:span", 1, 8))
    assert looped == spanned
    assert run(ring, client.fetch_range("wiki:span", 5, 3, grouped=True)) == []


def test_fetch_span_falls_back_per_timestamp_when_primary_is_gone():
    """A ts the grouped read cannot serve is recovered via the fallback chain."""
    ring = build_ring(node_count=10)
    client = P2PLogClient(ChordDhtClient(ring.gateway()), HashFunctionFamily.create(3, bits=BITS))
    entries = [make_entry(ts, key="wiki:spanfall") for ts in range(1, 5)]
    run(ring, client.append_many(entries))
    ring.run_for(1.0)
    # Delete the primary (h1) placement of ts 2: the grouped read misses it,
    # the per-ts fallback finds it through h2/h3.
    primary = client.hash_family[0]
    log_key = make_log_key("wiki:spanfall", 2)
    run(ring, client.dht.remove(primary.placement_key(log_key), key_id=primary(log_key)))
    spanned = run(ring, client.fetch_range("wiki:spanfall", 1, 4, grouped=True))
    assert spanned == entries
    assert client.fallback_reads >= 1


def test_fetch_span_windows_grouped_reads_by_max_parallel():
    """Regression: the grouped path must honour the fan-out bound too.

    ``get_many`` resolves its items' placements concurrently, so handing
    it a whole 500-entry range at once would put one in-flight routing per
    timestamp on the wire — the same flood the windowed parallel mode
    prevents.
    """
    sim = Simulator(seed=2)
    dht = LocalDht(sim)
    log = P2PLogClient(dht, HashFunctionFamily.create(2, bits=BITS), max_parallel=16)
    for ts in range(1, 501):
        entry = make_entry(ts)
        dht._table[log.hash_family[0].placement_key(entry.log_key)] = entry

    batch_sizes = []
    plain_get_many = dht.get_many

    def tracking_get_many(items):
        items = list(items)
        batch_sizes.append(len(items))
        result = yield from plain_get_many(items)
        return result

    dht.get_many = tracking_get_many
    entries = sim.run(until=sim.process(log.fetch_span("doc", 1, 500)))
    assert [entry.ts for entry in entries] == list(range(1, 501))
    assert batch_sizes and max(batch_sizes) <= 16


def test_parallel_fetch_range_bounds_in_flight_requests():
    """Regression: a 500-entry range must not exceed max_parallel fetches.

    The parallel retrieval mode used to spawn one process per timestamp
    with no bound, flooding the network with one simultaneous routed
    lookup per missing entry on long catch-ups.
    """
    sim = Simulator(seed=1)
    dht = LocalDht(sim, operation_delay=0.002)
    log = P2PLogClient(dht, HashFunctionFamily.create(2, bits=BITS), max_parallel=16)
    for ts in range(1, 501):
        entry = make_entry(ts)
        dht._table[log.hash_family[0].placement_key(entry.log_key)] = entry

    in_flight = 0
    peak = 0
    plain_fetch = log.fetch

    def tracked_fetch(document_key, ts):
        nonlocal in_flight, peak
        in_flight += 1
        peak = max(peak, in_flight)
        try:
            entry = yield from plain_fetch(document_key, ts)
        finally:
            in_flight -= 1
        return entry

    log.fetch = tracked_fetch
    entries = sim.run(until=sim.process(log.fetch_range("doc", 1, 500, parallel=True)))
    assert [entry.ts for entry in entries] == list(range(1, 501))
    assert peak <= 16, f"{peak} fetches were in flight at once"
    with pytest.raises(ValueError):
        P2PLogClient(LocalDht(sim), HashFunctionFamily.create(2, bits=BITS), max_parallel=0)


# ---------------------------------------------------------------------------
# checkpoints
# ---------------------------------------------------------------------------


def make_checkpoint(ts, key="doc", lines=("alpha", "beta")):
    return Checkpoint(document_key=key, ts=ts, lines=tuple(lines))


def test_checkpoint_validation_and_key():
    checkpoint = make_checkpoint(4)
    assert checkpoint.checkpoint_key == "doc!ckpt#4"
    assert "snapshot" in checkpoint.describe()
    with pytest.raises(ValueError):
        make_checkpoint(0)
    with pytest.raises(ValueError):
        make_checkpoint_key("doc", 0)


def test_checkpoint_placements_use_the_salted_checkpoint_family():
    """Checkpoints land at |Hr| distinct peers, independent of the patch family."""
    ring = build_ring(node_count=10)
    client = P2PLogClient(ChordDhtClient(ring.gateway()), HashFunctionFamily.create(3, bits=BITS))
    checkpoint = make_checkpoint(4, key="wiki:ckpt")
    stored = run(ring, client.publish_checkpoint(checkpoint))
    assert stored == 3
    placements = client.checkpoint_placements("wiki:ckpt", 4)
    assert len({identifier for _key, identifier in placements}) == 3
    assert all(key.startswith("hc") for key, _identifier in placements)
    patch_ids = {identifier for _key, identifier in client.placements("wiki:ckpt", 4)}
    assert patch_ids != {identifier for _key, identifier in placements}
    for storage_key, identifier in placements:
        owner = ring.responsible_node_for_id(identifier)
        assert owner.storage.value(storage_key) == checkpoint


def test_latest_checkpoint_walks_the_index_and_respects_max_ts():
    ring = build_ring()
    client = P2PLogClient(ChordDhtClient(ring.gateway()), HashFunctionFamily.create(2, bits=BITS))
    for ts in (4, 8):
        run(ring, client.publish_checkpoint(make_checkpoint(ts, key="wiki:latest")))
    run(ring, client.publish_checkpoint_index("wiki:latest", (8, 4)))
    newest = run(ring, client.latest_checkpoint("wiki:latest", 20))
    assert newest.ts == 8
    older = run(ring, client.latest_checkpoint("wiki:latest", 7))
    assert older.ts == 4
    assert run(ring, client.latest_checkpoint("wiki:latest", 3)) is None
    assert run(ring, client.latest_checkpoint("wiki:none", 20)) is None


def test_latest_checkpoint_skips_unreachable_listed_checkpoints():
    """An indexed checkpoint whose placements are all gone is skipped."""
    ring = build_ring()
    client = P2PLogClient(ChordDhtClient(ring.gateway()), HashFunctionFamily.create(2, bits=BITS))
    for ts in (4, 8):
        run(ring, client.publish_checkpoint(make_checkpoint(ts, key="wiki:skip")))
    run(ring, client.publish_checkpoint_index("wiki:skip", (8, 4)))
    assert run(ring, client.gc_checkpoint("wiki:skip", 8)) == 2
    fallback = run(ring, client.latest_checkpoint("wiki:skip", 20))
    assert fallback.ts == 4
    with pytest.raises(CheckpointUnavailable):
        run(ring, client.fetch_checkpoint("wiki:skip", 8))


def test_retract_many_removes_only_matching_entries():
    ring = build_ring()
    client = P2PLogClient(ChordDhtClient(ring.gateway()), HashFunctionFamily.create(2, bits=BITS))
    orphan = make_entry(1, key="wiki:retract", author="old-master")
    run(ring, client.append_many([orphan]))
    assert run(ring, client.retract_many([orphan])) == 2  # both placements gone
    with pytest.raises(PatchUnavailable):
        run(ring, client.fetch("wiki:retract", 1))
    # A placement re-used by a *different* (validated) entry is untouched.
    validated = make_entry(1, key="wiki:retract", author="new-master")
    run(ring, client.append_many([validated]))
    assert run(ring, client.retract_many([orphan])) == 0
    assert run(ring, client.fetch("wiki:retract", 1)) == validated
