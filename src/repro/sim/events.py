"""Event primitives for the discrete-event simulation kernel.

The kernel follows the classic event/process model popularised by SimPy:
an :class:`Event` is a one-shot occurrence that processes can wait on by
``yield``-ing it; it is *triggered* either with a value (:meth:`Event.succeed`)
or with an exception (:meth:`Event.fail`).  Composite events
(:class:`AllOf`, :class:`AnyOf`) allow waiting on several events at once.

Events are deliberately lightweight: the scheduling policy (when callbacks
actually run) lives in :mod:`repro.sim.scheduler`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, TYPE_CHECKING

from ..errors import EventAlreadyTriggered

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .scheduler import Simulator

# A callback receives the event that triggered it.
Callback = Callable[["Event"], None]

_PENDING = object()


class Event:
    """A one-shot occurrence that simulation processes can wait on.

    Parameters
    ----------
    sim:
        The :class:`~repro.sim.scheduler.Simulator` that will dispatch the
        event's callbacks once it has been triggered and scheduled.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_scheduled", "_cancelled")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[list[Callback]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._scheduled = False
        self._cancelled = False

    # -- state ------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """``True`` once the event has been succeeded or failed."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """``True`` once the simulator has run the event's callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded (only meaningful once triggered)."""
        return bool(self._ok)

    @property
    def cancelled(self) -> bool:
        """``True`` once the event has been cancelled (callbacks never run)."""
        return self._cancelled

    @property
    def value(self) -> Any:
        """The value (or exception) the event was triggered with."""
        if self._value is _PENDING:
            raise AttributeError("event has not been triggered yet")
        return self._value

    # -- triggering -------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``.

        Returns the event itself so the call can be chained, e.g.
        ``return Event(sim).succeed(42)``.
        """
        if self._ok is not None:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Processes waiting on the event will have ``exception`` raised at the
        ``yield`` statement.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() requires an exception, got {exception!r}")
        if self._ok is not None:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.sim.schedule(self)
        return self

    def cancel(self) -> bool:
        """Lazily cancel the event: its callbacks will never run.

        Cancellation is the cheap retraction path for timers whose outcome
        became irrelevant (an RPC timeout whose response arrived, a watchdog
        for work that finished).  A cancelled event that sits in a runtime's
        queue becomes a *tombstone*: the scheduler skips it on contact and
        periodically compacts the queue when tombstones accumulate, so
        cancel-heavy workloads do not leak memory or pay dispatch costs.

        Only cancel events whose callbacks you own — a process waiting on a
        cancelled event would never resume.  Returns ``True`` if the event
        was newly cancelled, ``False`` if it was already cancelled or its
        callbacks have already been dispatched.
        """
        if self._cancelled or self.callbacks is None:
            return False
        self._cancelled = True
        self.callbacks = None
        self.sim._note_cancel(self)
        return True

    def trigger(self, event: "Event") -> None:
        """Mirror the outcome of another (already triggered) event."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # -- callbacks --------------------------------------------------------

    def add_callback(self, callback: Callback) -> None:
        """Register ``callback`` to run when the event is processed.

        If the event has already been processed the callback runs
        immediately (synchronously).  Callbacks added to a cancelled event
        are dropped: the event will never be dispatched.
        """
        if self._cancelled:
            return
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self._ok is True:
            state = f"ok={self._value!r}"
        elif self._ok is False:
            state = f"failed={self._value!r}"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires automatically after a simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim.schedule(self, delay=delay)

    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover
        raise EventAlreadyTriggered("Timeout events trigger themselves")

    def fail(self, exception: BaseException) -> "Event":  # pragma: no cover
        raise EventAlreadyTriggered("Timeout events trigger themselves")


class Future(Event):
    """An explicitly triggered event used for request/response interactions.

    ``Future`` adds no behaviour over :class:`Event`; the separate name makes
    call sites (RPC layers, asynchronous services) read naturally.
    """

    __slots__ = ()


class ConditionValue:
    """Ordered mapping of events to values produced by :class:`AllOf`/:class:`AnyOf`."""

    def __init__(self, events: Iterable[Event]) -> None:
        self._events = [event for event in events if event.processed and event.ok]

    def __iter__(self):
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __contains__(self, event: Event) -> bool:
        return event in self._events

    def values(self) -> list[Any]:
        """Values of the triggered events, in the order they were passed."""
        return [event.value for event in self._events]

    def todict(self) -> dict[Event, Any]:
        """Mapping from triggered event to its value."""
        return {event: event.value for event in self._events}


class _Condition(Event):
    """Base class for composite events."""

    __slots__ = ("_events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._events = list(events)
        self._pending = len(self._events)
        if not self._events:
            self.succeed(ConditionValue(self._events))
            return
        for event in self._events:
            event.add_callback(self._check)

    def _satisfied(self) -> bool:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._pending -= 1
        if not event.ok:
            self.fail(event.value)
        elif self._satisfied():
            self.succeed(ConditionValue(self._events))


class AllOf(_Condition):
    """Triggered once *all* constituent events have succeeded."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._pending == 0


class AnyOf(_Condition):
    """Triggered once *any* constituent event has succeeded."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._pending < len(self._events)
