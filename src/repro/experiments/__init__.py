"""Experiment harness: the code that regenerates every scenario and figure."""

from .report import EXPERIMENT_DESCRIPTIONS, render_markdown_report
from .runner import (
    FULL_PARAMETERS,
    QUICK_PARAMETERS,
    ExperimentRun,
    render_runs,
    run_all,
    run_experiment,
)
from .scenarios import (
    experiment_baseline_comparison,
    experiment_chord_lookup,
    experiment_concurrent_publishing,
    experiment_log_availability,
    experiment_master_departure,
    experiment_master_join,
    experiment_response_time,
    experiment_timestamp_generation,
    iter_all_experiments,
)

__all__ = [
    "EXPERIMENT_DESCRIPTIONS",
    "ExperimentRun",
    "FULL_PARAMETERS",
    "QUICK_PARAMETERS",
    "experiment_baseline_comparison",
    "experiment_chord_lookup",
    "experiment_concurrent_publishing",
    "experiment_log_availability",
    "experiment_master_departure",
    "experiment_master_join",
    "experiment_response_time",
    "experiment_timestamp_generation",
    "iter_all_experiments",
    "render_markdown_report",
    "render_runs",
    "run_all",
    "run_experiment",
]
