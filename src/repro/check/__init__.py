"""Model checking for nemesis runs: invariant snapshots + final convergence.

:class:`ConvergenceChecker` attaches to an :class:`~repro.core.LtrSystem`
as an opt-in fault observer (``system.add_observer(checker)``); every fault
boundary the nemesis crosses produces a :class:`CheckSnapshot` verifying
dense timestamps, a prefix-complete log and OT convergence from global
state, and :meth:`ConvergenceChecker.final_check` verifies post-heal
eventual convergence end-to-end.  Reports are deterministic data — on the
simulation backend a replayed ``(plan, seed)`` pair yields byte-identical
``to_json()`` output.
"""

from .checker import CheckSnapshot, ConvergenceChecker

__all__ = ["CheckSnapshot", "ConvergenceChecker"]
