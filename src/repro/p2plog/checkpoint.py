"""Document checkpoints: materialized snapshots stored in the P2P-Log's DHT.

The paper's retrieval procedure (Procedure 3) replays the timestamped patch
log from the reader's ``applied_ts`` onward, so a freshly joined or
long-offline peer pays O(document age) routed fetches.  A
:class:`Checkpoint` is a full snapshot of a document at one validated
timestamp, materialized by the Master-key peer every
``checkpoint_interval`` published timestamps and replicated at ``|Hr|``
distinct peers through a *salted checkpoint hash family* (``Hc``, salts
``hc1 .. hcN``) — exactly mirroring the Log-Peer placement of patches, so
checkpoint placements enjoy the same hand-off-on-churn and
successor-replication guarantees as log entries.

Discovery uses a per-document *checkpoint index*: a small record listing
the retained checkpoint timestamps (newest first), stored under the same
hash family.  Readers fetch the index, then the newest checkpoint at or
below their target timestamp, and fall back to full log replay when
neither answers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Salt prefix of the checkpoint hash family (``Hc``), kept distinct from
#: the patch replication family's ``hr`` salts so checkpoint and log
#: placements of the same document are independent.
CHECKPOINT_SALT_PREFIX = "hc"


@dataclass(frozen=True)
class Checkpoint:
    """A full snapshot of one document at one validated timestamp.

    Attributes
    ----------
    document_key:
        The document this snapshot belongs to.
    ts:
        The validated timestamp the snapshot materializes: applying patches
        ``1 .. ts`` of the log in order yields exactly ``lines``.
    lines:
        The document content at ``ts``, line by line.
    created_at:
        Simulated time at which the Master-key peer materialized it.
    author:
        Name of the Master-key peer that produced the snapshot.
    metadata:
        Optional free-form annotations (not part of equality).
    """

    document_key: str
    ts: int
    lines: tuple[str, ...] = ()
    created_at: float = 0.0
    author: str = "master"
    metadata: dict[str, Any] = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if self.ts < 1:
            raise ValueError(f"checkpoint timestamps start at 1, got {self.ts}")
        object.__setattr__(self, "lines", tuple(self.lines))

    @property
    def checkpoint_key(self) -> str:
        """The logical string hashed by the checkpoint hash family."""
        return make_checkpoint_key(self.document_key, self.ts)

    def describe(self) -> str:
        """One-line human readable description (used in traces)."""
        return f"{self.document_key}@{self.ts} snapshot ({len(self.lines)} lines)"


def make_checkpoint_key(document_key: str, ts: int) -> str:
    """The canonical placement string of the checkpoint ``(key, ts)``."""
    if ts < 1:
        raise ValueError(f"checkpoint timestamps start at 1, got {ts}")
    return f"{document_key}!ckpt#{ts}"


def make_checkpoint_index_key(document_key: str) -> str:
    """The canonical placement string of a document's checkpoint index."""
    return f"{document_key}!ckpt-index"


# -- wire registration (see repro.net.codec) ---------------------------------

from ..net.codec import register_wire_type  # noqa: E402

register_wire_type(
    Checkpoint,
    "checkpoint",
    pack=lambda obj, enc: [
        obj.document_key, obj.ts, list(obj.lines), obj.created_at,
        obj.author, enc(obj.metadata),
    ],
    unpack=lambda body, dec: Checkpoint(
        document_key=body[0], ts=body[1], lines=tuple(body[2]),
        created_at=body[3], author=body[4], metadata=dec(body[5]),
    ),
    copy=lambda obj, copier: Checkpoint(
        document_key=obj.document_key, ts=obj.ts, lines=obj.lines,
        created_at=obj.created_at, author=obj.author,
        metadata=copier(obj.metadata),
    ),
)
