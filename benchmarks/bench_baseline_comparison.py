"""Benchmark E6 — P2P-LTR vs. centralized reconciler vs. last-writer-wins.

The paper motivates P2P-LTR by the bottleneck / single-point-of-failure of
single-node reconcilers and by the need to keep every user's contribution.
This benchmark runs the same concurrent-editing workload against all three
systems through the scenario engine and reports which of them (a) keeps
all updates and (b) survives the crash of its coordinator.

Run with ``pytest benchmarks/bench_baseline_comparison.py --benchmark-only -s``.
"""

from repro.experiments import run_experiment


def test_benchmark_baseline_comparison(benchmark):
    """E6: only P2P-LTR keeps every update *and* has no single point of failure."""
    run = benchmark.pedantic(
        lambda: run_experiment(
            "E6",
            quick=True,
            overrides={"updater_counts": (2, 4, 8), "peers": 16},
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(run.table.render())

    rows = run.result.rows
    ltr_rows = [row for row in rows if row["system"] == "p2p-ltr"]
    central_rows = [row for row in rows if row["system"] == "central"]
    lww_rows = [row for row in rows if row["system"] == "lww"]

    assert all(row["all_updates_preserved"] for row in ltr_rows)
    assert all(row["survives_coordinator_crash"] for row in ltr_rows)
    assert all(not row["survives_coordinator_crash"] for row in central_rows)
    assert all(row["lost_updates"] > 0 for row in lww_rows)
