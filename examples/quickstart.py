"""Quickstart: a first P2P-LTR system, then a first declarative scenario.

Builds a small DHT ring, lets two peers edit the same document, and shows
the three things P2P-LTR guarantees: continuous timestamps, a complete
patch log, and eventual consistency of every replica.  The closing section
declares the same measurement as a :class:`~repro.engine.ScenarioSpec` and
lets the scenario engine do the sweeping and tabulation — that is how all
of E1..E10 are written.

Run with ``python examples/quickstart.py``.
"""

from repro import LtrSystem
from repro.engine import ScenarioSpec, run_scenario


def main() -> None:
    # 1. Build a system: 8 peers forming a Chord ring, every peer hosting the
    #    timestamp authority and Master-key service for its share of the keys.
    system = LtrSystem(seed=42)
    peers = system.bootstrap(8)
    print(f"ring formed with {len(peers)} peers: {', '.join(peers)}")

    # 2. peer-0 creates a document and publishes the first patch.
    key = "xwiki:GettingStarted"
    first = system.edit_and_commit("peer-0", key, "P2P-LTR in one page")
    print(f"peer-0 published revision ts={first.ts} "
          f"(latency {first.latency * 1000:.1f} ms, "
          f"{first.log_replicas} log replicas)")

    # 3. peer-1 edits the same document *without* having seen peer-0's patch.
    #    The Master-key peer tells it that it is behind; it retrieves the
    #    missing patch from the P2P-Log, merges, and retries automatically.
    second = system.edit_and_commit("peer-1", key, "a second line from peer-1")
    print(f"peer-1 published revision ts={second.ts} after retrieving "
          f"{second.retrieved_patches} missing patch(es) "
          f"in {second.attempts} validation attempt(s)")

    # 4. Everyone synchronises and all replicas are identical.
    report = system.check_consistency(key)
    print(f"document is at ts={report.last_ts}; "
          f"log continuous: {report.log_continuous}; "
          f"replicas converged: {report.converged}")
    print("final content:")
    for line in report.canonical_lines:
        print(f"  | {line}")

    # 5. Where is the Master-key peer for this document?
    print(f"Master-key peer for {key!r} is {system.master_of(key)}")

    # 6. The same steps as a declarative scenario: the engine sweeps the
    #    ring size, derives the seeds, and builds the result table.
    def measure(ctx):
        sized = ctx.build_system()  # peers/seed/latency come from the context
        created = sized.edit_and_commit("peer-0", key, "P2P-LTR in one page")
        merged = sized.edit_and_commit("peer-1", key, "a second line from peer-1")
        sized_report = sized.check_consistency(key)
        return {
            "peers": ctx.params["peers"],
            "final_ts": merged.ts,
            "retrieved": merged.retrieved_patches,
            "first_commit_ms": round(created.latency * 1000, 2),
            "converged": sized_report.converged,
        }

    spec = ScenarioSpec(
        scenario_id="QUICKSTART",
        title="Quickstart as a scenario: two sequential edits per ring size",
        columns=("peers", "final_ts", "retrieved", "first_commit_ms", "converged"),
        grid={"peers": (4, 8, 16)},
        seed=42,
        measure=measure,
    )
    print()
    print(run_scenario(spec).table.render())


if __name__ == "__main__":
    main()
