"""Tests for the operational-transformation engine (repro.ot).

Includes hypothesis property tests for the core convergence invariant
(TP1): for any two concurrent operations a and b defined on the same
document, applying ``a`` then ``transform(b, a)`` equals applying ``b`` then
``transform(a, b)``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DivergenceDetected, InvalidOperation
from repro.ot import (
    DeleteLine,
    Document,
    InsertLine,
    NoOp,
    Patch,
    all_converged,
    converge_check,
    diff_lines,
    integrate_remote_patches,
    is_noop,
    make_patch,
    transform,
    transform_pair,
    transform_sequences,
)


# ---------------------------------------------------------------------------
# operations
# ---------------------------------------------------------------------------


def test_insert_apply_and_bounds():
    assert InsertLine(0, "x").apply(["a"]) == ["x", "a"]
    assert InsertLine(1, "x").apply(["a"]) == ["a", "x"]
    with pytest.raises(InvalidOperation):
        InsertLine(3, "x").apply(["a"])
    with pytest.raises(InvalidOperation):
        InsertLine(-1, "x")


def test_delete_apply_and_bounds():
    assert DeleteLine(1, "b").apply(["a", "b"]) == ["a"]
    with pytest.raises(InvalidOperation):
        DeleteLine(5, "x").apply(["a"])
    with pytest.raises(InvalidOperation):
        DeleteLine(-2, "x")


def test_noop_apply_returns_copy():
    lines = ["a", "b"]
    result = NoOp().apply(lines)
    assert result == lines and result is not lines
    assert is_noop(NoOp())
    assert not is_noop(InsertLine(0, "x"))


def test_inverse_operations_round_trip():
    lines = ["a", "b", "c"]
    insert = InsertLine(1, "x")
    assert insert.inverse().apply(insert.apply(lines)) == lines
    delete = DeleteLine(2, "c")
    assert delete.inverse().apply(delete.apply(lines)) == lines
    assert NoOp().inverse() == NoOp()


def test_describe_strings():
    assert InsertLine(2, "hi").describe() == "ins@2:'hi'"
    assert DeleteLine(0, "x").describe() == "del@0:'x'"
    assert NoOp().describe() == "noop"


# ---------------------------------------------------------------------------
# transformation: explicit cases
# ---------------------------------------------------------------------------


def test_insert_insert_different_positions():
    a, b = InsertLine(1, "a"), InsertLine(3, "b")
    assert transform(a, b) == a
    assert transform(b, a) == InsertLine(4, "b")


def test_insert_insert_same_position_tie_break_is_antisymmetric():
    a = InsertLine(2, "from-u1", origin="u1")
    b = InsertLine(2, "from-u2", origin="u2")
    a_prime, b_prime = transform_pair(a, b)
    shifted = {a_prime.position, b_prime.position}
    assert shifted == {2, 3}


def test_insert_vs_delete():
    assert transform(InsertLine(1, "x"), DeleteLine(3, "y")) == InsertLine(1, "x")
    assert transform(InsertLine(4, "x"), DeleteLine(1, "y")) == InsertLine(3, "x")
    assert transform(InsertLine(1, "x"), DeleteLine(1, "y")) == InsertLine(1, "x")


def test_delete_vs_insert():
    assert transform(DeleteLine(1, "x"), InsertLine(3, "y")) == DeleteLine(1, "x")
    assert transform(DeleteLine(3, "x"), InsertLine(1, "y")) == DeleteLine(4, "x")
    assert transform(DeleteLine(1, "x"), InsertLine(1, "y")) == DeleteLine(2, "x")


def test_delete_vs_delete_same_position_cancels():
    assert isinstance(transform(DeleteLine(2, "x"), DeleteLine(2, "x")), NoOp)
    assert transform(DeleteLine(1, "x"), DeleteLine(3, "y")) == DeleteLine(1, "x")
    assert transform(DeleteLine(3, "x"), DeleteLine(1, "y")) == DeleteLine(2, "x")


def test_transform_against_noop_is_identity():
    op = InsertLine(1, "x")
    assert transform(op, NoOp()) == op
    assert transform(NoOp(), op) == NoOp()


def test_transform_rejects_unknown_types():
    with pytest.raises(TypeError):
        transform("not an op", InsertLine(0, "x"))  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# transformation: property-based convergence (TP1)
# ---------------------------------------------------------------------------


LINES = st.lists(st.sampled_from(["alpha", "beta", "gamma", "delta", "epsilon"]),
                 min_size=1, max_size=6)


def operations_for(lines, origin):
    """Strategy generating a valid operation for a document of ``len(lines)``."""
    length = len(lines)
    inserts = st.builds(
        InsertLine,
        position=st.integers(min_value=0, max_value=length),
        line=st.sampled_from(["new-1", "new-2", "new-3"]),
        origin=st.just(origin),
    )
    if length == 0:
        return inserts
    deletes = st.builds(
        lambda position: DeleteLine(position, lines[position], origin=origin),
        position=st.integers(min_value=0, max_value=length - 1),
    )
    return st.one_of(inserts, deletes)


@given(data=st.data(), lines=LINES)
@settings(max_examples=300)
def test_tp1_single_operations_converge(data, lines):
    op_a = data.draw(operations_for(lines, "site-a"), label="op_a")
    op_b = data.draw(operations_for(lines, "site-b"), label="op_b")
    path_one = transform(op_b, op_a).apply(op_a.apply(lines))
    path_two = transform(op_a, op_b).apply(op_b.apply(lines))
    assert path_one == path_two


@given(data=st.data(), lines=LINES)
@settings(max_examples=150)
def test_tp1_sequences_converge(data, lines):
    def sequence_for(origin):
        current = list(lines)
        ops = []
        for _ in range(data.draw(st.integers(min_value=1, max_value=3))):
            op = data.draw(operations_for(current, origin))
            ops.append(op)
            current = op.apply(current)
        return ops

    ours = sequence_for("site-a")
    theirs = sequence_for("site-b")
    ours_prime, theirs_prime = transform_sequences(ours, theirs)

    state_one = list(lines)
    for op in ours:
        state_one = op.apply(state_one)
    for op in theirs_prime:
        state_one = op.apply(state_one)

    state_two = list(lines)
    for op in theirs:
        state_two = op.apply(state_two)
    for op in ours_prime:
        state_two = op.apply(state_two)

    assert state_one == state_two


# ---------------------------------------------------------------------------
# patches
# ---------------------------------------------------------------------------


def test_patch_apply_sequence():
    patch = Patch((InsertLine(0, "a"), InsertLine(1, "b"), DeleteLine(0, "a")))
    assert patch.apply([]) == ["b"]
    assert len(patch) == 3
    assert [op.describe() for op in patch] == ["ins@0:'a'", "ins@1:'b'", "del@0:'a'"]


def test_patch_validation_and_emptiness():
    with pytest.raises(InvalidOperation):
        Patch((), base_ts=-1)
    assert Patch((NoOp(),)).is_empty()
    assert not Patch((InsertLine(0, "x"),)).is_empty()


def test_patch_compose_and_inverse():
    first = Patch((InsertLine(0, "a"),), author="u1")
    second = Patch((InsertLine(1, "b"),), author="u1")
    composed = first.compose(second)
    assert composed.apply([]) == ["a", "b"]
    assert composed.inverse().apply(["a", "b"]) == []


def test_patch_with_base_and_operations():
    patch = Patch((InsertLine(0, "a"),), base_ts=0, author="u1")
    rebased = patch.with_base(7)
    assert rebased.base_ts == 7 and rebased.author == "u1"
    replaced = patch.with_operations([NoOp()])
    assert replaced.is_empty()


def test_patch_describe_mentions_author():
    assert Patch((InsertLine(0, "a"),), author="alice").describe().startswith("alice[")


def test_patch_transformed_against_concurrent_patch():
    base = ["shared"]
    ours = Patch((InsertLine(0, "ours"),), author="u1")
    theirs = Patch((InsertLine(1, "theirs"),), author="u2")
    ours_rebased = ours.transformed_against(theirs)
    assert ours_rebased.apply(theirs.apply(base)) == ["ours", "shared", "theirs"]


# ---------------------------------------------------------------------------
# diff
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "before, after",
    [
        ([], ["a"]),
        (["a"], []),
        (["a", "b", "c"], ["a", "x", "c"]),
        (["a", "b", "c", "d"], ["a", "d"]),
        (["a", "c"], ["a", "b", "c"]),
        (["x", "y"], ["y", "x"]),
        (["one", "two", "three"], ["zero", "one", "three", "four"]),
        ([], []),
        (["same"], ["same"]),
    ],
)
def test_diff_lines_rewrites_before_into_after(before, after):
    operations = diff_lines(before, after)
    current = list(before)
    for operation in operations:
        current = operation.apply(current)
    assert current == after


@given(
    before=st.lists(st.sampled_from(["a", "b", "c", "d", "e"]), max_size=8),
    after=st.lists(st.sampled_from(["a", "b", "c", "d", "e", "f"]), max_size=8),
)
@settings(max_examples=300)
def test_diff_round_trip_property(before, after):
    patch = make_patch(before, after, author="prop")
    assert patch.apply(before) == after


def test_make_patch_records_metadata():
    patch = make_patch(["a"], ["a", "b"], base_ts=4, author="alice", comment="add b")
    assert patch.base_ts == 4
    assert patch.author == "alice"
    assert patch.comment == "add b"
    assert all(op.origin == "alice" for op in patch.operations)


# ---------------------------------------------------------------------------
# documents and merging
# ---------------------------------------------------------------------------


def test_document_from_text_and_properties():
    document = Document.from_text("page", "line1\nline2")
    assert document.lines == ["line1", "line2"]
    assert document.text == "line1\nline2"
    assert document.line_count() == 2
    assert Document.from_text("empty", "").lines == []


def test_document_apply_patch_enforces_continuity():
    document = Document("page")
    document.apply_patch(Patch((InsertLine(0, "a"),)), ts=1)
    assert document.applied_ts == 1
    with pytest.raises(InvalidOperation):
        document.apply_patch(Patch((InsertLine(0, "b"),)), ts=3)
    document.apply_patch(Patch((InsertLine(0, "b"),)), ts=2)
    assert document.lines == ["b", "a"]
    assert len(document.history) == 2


def test_document_copy_is_independent():
    document = Document.from_text("page", "a")
    clone = document.copy()
    clone.lines.append("b")
    assert document.lines == ["a"]


def test_document_digest_and_convergence_helpers():
    a = Document.from_text("k", "same")
    b = Document.from_text("k", "same")
    c = Document.from_text("k", "different")
    assert a.same_content(b)
    assert a.digest() == b.digest()
    assert all_converged([a, b])
    assert not all_converged([a, c])


def test_converge_check_groups_by_applied_ts():
    ahead = Document("k", lines=["x"], applied_ts=2)
    behind = Document("k", lines=["only-one"], applied_ts=1)
    converge_check([ahead, behind])  # different ts: not compared
    twin = Document("k", lines=["x"], applied_ts=2)
    converge_check([ahead, twin])
    divergent = Document("k", lines=["y"], applied_ts=2)
    with pytest.raises(DivergenceDetected):
        converge_check([ahead, divergent])


def test_integrate_remote_patches_without_pending():
    document = Document("page")
    remote = [
        (1, Patch((InsertLine(0, "first"),), author="u2")),
        (2, Patch((InsertLine(1, "second"),), author="u3")),
    ]
    result = integrate_remote_patches(document, remote)
    assert result.integrated == 2
    assert result.rebased_local is None
    assert document.lines == ["first", "second"]
    assert result.new_base_ts == 2


def test_integrate_remote_patches_rejects_gaps():
    document = Document("page")
    with pytest.raises(DivergenceDetected):
        integrate_remote_patches(document, [(2, Patch((InsertLine(0, "x"),)))])


def test_integrate_remote_patches_rebases_pending_local_patch():
    # Shared validated state: ["title", "body"]
    document = Document("page", lines=["title", "body"], applied_ts=3)
    pending = Patch((InsertLine(2, "local-footer"),), base_ts=3, author="me")
    remote = [(4, Patch((InsertLine(0, "remote-header"),), base_ts=3, author="other"))]
    result = integrate_remote_patches(document, remote, pending)
    assert document.lines == ["remote-header", "title", "body"]
    rebased = result.rebased_local
    assert rebased.base_ts == 4
    # applying the rebased local patch keeps the user's intent (footer at the end)
    assert rebased.apply(document.lines) == ["remote-header", "title", "body", "local-footer"]


def test_integrate_preserves_intent_under_conflicting_edits():
    document = Document("page", lines=["a", "b", "c"], applied_ts=1)
    pending = Patch((DeleteLine(1, "b"),), base_ts=1, author="me")
    remote = [(2, Patch((DeleteLine(1, "b"),), base_ts=1, author="other"))]
    result = integrate_remote_patches(document, remote, pending)
    assert document.lines == ["a", "c"]
    # both sides deleted the same line; the pending patch must become a no-op
    assert result.rebased_local.is_empty()
    assert result.rebased_local.apply(document.lines) == ["a", "c"]
