"""Benchmark E4 — Scenario "New Master-key peer joining".

New peers join a running system and become Master-key peers for part of the
key space.  The engine-produced table verifies that the previous
responsible peers hand over their keys and timestamp counters, that updates
after the join continue the timestamp sequence, and that eventual
consistency is preserved.

Run with ``pytest benchmarks/bench_master_join.py --benchmark-only -s``.
"""

from repro.experiments import run_experiment


def test_benchmark_master_join(benchmark):
    """E4: key/timestamp hand-over to joining Master-key peers."""
    run = benchmark.pedantic(
        lambda: run_experiment(
            "E4",
            quick=True,
            overrides={"joiners": 3, "peers": 8, "documents": 24},
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(run.table.render())

    rows = run.result.rows
    assert len(rows) == 3
    assert all(row["counters_correct"] for row in rows)
    assert all(row["post_join_commit_ok"] for row in rows)
    assert all(row["converged_sample"] for row in rows)
    # At least one joiner actually took over some keys (hash-dependent).
    assert sum(row["keys_taken_over"] for row in rows) >= 1
