"""The SQLite/WAL storage backend: one database file per node.

Schema and pragmas follow the WAL idiom (``journal_mode=WAL`` so readers
never block the writer and committed transactions survive a hard kill,
``synchronous=NORMAL`` — durable across application crashes, the WAL is
replayed on reopen — and a generous ``busy_timeout`` for the live asyncio
backend where several threads may share a file).

Reads are served from a write-through cache so the protocol stack pays the
dict cost on its hot paths; the database is only read on :meth:`reopen`.
Two details keep a SQLite-backed run *byte-identical* to a dict-backed one:

* rows are reloaded ``ORDER BY rowid``, and :meth:`put` upserts with ``ON
  CONFLICT DO UPDATE`` (which keeps the existing rowid), so after any
  sequence of puts/overwrites/deletes the reloaded iteration order equals
  dict insertion order;
* values are pickled verbatim, and the ownership metadata columns round-trip
  ``StoredItem`` losslessly — including ``key_id``, which for salted-family
  placements is not recomputable from the key.
"""

from __future__ import annotations

import pickle
import sqlite3
from pathlib import Path
from typing import Iterable, Iterator, Optional, Union

from ..errors import StorageError
from .api import StorageBackend, StoredItem

_SCHEMA = """
CREATE TABLE IF NOT EXISTS items (
    key        TEXT PRIMARY KEY,
    key_id     INTEGER NOT NULL,
    is_replica INTEGER NOT NULL,
    version    INTEGER NOT NULL,
    stored_at  REAL NOT NULL,
    value      BLOB NOT NULL
)
"""

_UPSERT = """
INSERT INTO items (key, key_id, is_replica, version, stored_at, value)
VALUES (?, ?, ?, ?, ?, ?)
ON CONFLICT(key) DO UPDATE SET
    key_id = excluded.key_id,
    is_replica = excluded.is_replica,
    version = excluded.version,
    stored_at = excluded.stored_at,
    value = excluded.value
"""


class SqliteBackend(StorageBackend):
    """Durable storage in a single SQLite database file."""

    durable = True

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._cache: dict[str, StoredItem] = {}
        self._con: Optional[sqlite3.Connection] = None
        self._open()

    # -- connection lifecycle -------------------------------------------------

    def _open(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Autocommit mode: every single-statement write is its own committed
        # transaction; batches open an explicit transaction in put_many.
        con = sqlite3.connect(str(self.path), isolation_level=None)
        con.execute("PRAGMA journal_mode=WAL")
        con.execute("PRAGMA synchronous=NORMAL")
        con.execute("PRAGMA busy_timeout=30000")
        con.execute(_SCHEMA)
        self._con = con
        self._load()

    def _load(self) -> None:
        self._cache.clear()
        rows = self._connection.execute(
            "SELECT key, key_id, is_replica, version, stored_at, value "
            "FROM items ORDER BY rowid"
        )
        for key, key_id, is_replica, version, stored_at, blob in rows:
            self._cache[key] = StoredItem(
                key=key,
                value=pickle.loads(blob),
                key_id=key_id,
                is_replica=bool(is_replica),
                version=version,
                stored_at=stored_at,
            )

    @property
    def _connection(self) -> sqlite3.Connection:
        if self._con is None:
            raise StorageError(f"sqlite backend {self.path} is closed")
        return self._con

    def close(self) -> None:
        if self._con is not None:
            self._con.close()
            self._con = None

    def reopen(self) -> None:
        """Reconnect and reload the cache from disk (crash-restart recovery).

        The cache is rebuilt purely from the database, so whatever did not
        reach a committed transaction is gone — exactly the state a peer
        restarted on the same disk would observe.
        """
        self.close()
        self._open()

    def flush(self) -> None:
        # Autocommit already made every write durable; fold the WAL back
        # into the main database so a plain file copy is complete.
        self._connection.execute("PRAGMA wal_checkpoint(TRUNCATE)")

    # -- core operations ------------------------------------------------------

    @staticmethod
    def _row(item: StoredItem) -> tuple:
        return (
            item.key,
            item.key_id,
            1 if item.is_replica else 0,
            item.version,
            item.stored_at,
            pickle.dumps(item.value, protocol=pickle.HIGHEST_PROTOCOL),
        )

    def get(self, key: str) -> Optional[StoredItem]:
        return self._cache.get(key)

    def put(self, item: StoredItem) -> None:
        self._connection.execute(_UPSERT, self._row(item))
        self._cache[item.key] = item

    def put_many(self, items: Iterable[StoredItem]) -> None:
        items = list(items)
        if not items:
            return
        con = self._connection
        con.execute("BEGIN")
        try:
            con.executemany(_UPSERT, [self._row(item) for item in items])
        except BaseException:
            con.execute("ROLLBACK")
            raise
        con.execute("COMMIT")
        for item in items:
            self._cache[item.key] = item

    def delete(self, key: str) -> bool:
        if key not in self._cache:
            return False
        self._connection.execute("DELETE FROM items WHERE key = ?", (key,))
        del self._cache[key]
        return True

    def scan(self) -> Iterator[StoredItem]:
        return iter(self._cache.values())

    def clear(self) -> None:
        self._connection.execute("DELETE FROM items")
        self._cache.clear()

    def keys(self) -> list[str]:
        return list(self._cache)

    def __contains__(self, key: str) -> bool:
        return key in self._cache

    def __len__(self) -> int:
        return len(self._cache)
