"""Hot-path profiling for protocol experiments.

:class:`HotpathProfiler` wraps a measured code region (a commit pipeline
run, a scenario body) in ``cProfile`` — and optionally ``tracemalloc`` —
and attributes the cost to the protocol layers that matter for the
scale experiments: payload copies on delivery, Message/RPC object churn,
chord routing and maintenance, storage writes, and the simulation kernel
itself.  The attribution is by *defining file* (and, where one file hosts
several roles, by function name), so it keeps working as functions are
added — an unknown function simply lands in ``other``.

Usage (scenario or benchmark code)::

    profiler = HotpathProfiler(allocations=False)
    with profiler:
        run_commit_pipeline()
    report = profiler.report()
    print(report.render(per=commits))

The profiler measures the wall-clock cost of whatever ran inside the
``with`` block; dividing by a unit count (``per=``) yields the per-commit
attribution table recorded in ``DESIGN.md``.
"""

from __future__ import annotations

import cProfile
import pstats
import time
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["HOTPATH_CATEGORIES", "HotpathProfiler", "HotpathReport"]

#: Function names in ``net/codec.py`` that implement the per-delivery
#: structural copy (everything else in that file is the byte codec).
_COPY_FUNCTIONS = frozenset({"copy_payload", "copy_message"})

#: Function names in ``chord/node.py`` that belong to routing rather than
#: ring maintenance.
_ROUTING_FUNCTIONS = frozenset({
    "find_successor", "lookup", "put", "get", "remove",
    "_find_successor_local", "rpc_find_successor", "_cached_route",
    "_remember_route", "_first_live_successor_candidate",
})

#: Attribution rules, first match wins: (category, filename fragment,
#: optional function-name whitelist).
HOTPATH_CATEGORIES: tuple[tuple[str, str, Optional[frozenset]], ...] = (
    ("payload_copy", "net/codec.py", _COPY_FUNCTIONS),
    ("codec_bytes", "net/codec.py", None),
    ("transport", "net/transport.py", None),
    ("message", "net/message.py", None),
    ("rpc", "net/rpc.py", None),
    ("chord_routing", "chord/node.py", _ROUTING_FUNCTIONS),
    ("chord_routing", "chord/finger.py", None),
    ("chord_routing", "chord/routecache.py", None),
    ("chord_routing", "chord/idspace.py", None),
    ("chord_maintenance", "chord/node.py", None),
    ("chord_ring", "chord/ring.py", None),
    ("storage", "chord/storage.py", None),
    ("storage", "repro/storage/", None),
    ("kernel", "repro/sim/", None),
    ("kernel", "repro/runtime/", None),
    ("protocol", "repro/core/", None),
    ("protocol", "repro/p2plog/", None),
    ("protocol", "repro/dht/", None),
    ("protocol", "repro/kts/", None),
    ("protocol", "repro/ot/", None),
)


def categorize(filename: str, function: str) -> str:
    """The hot-path category of one profiled function (``"other"`` default).

    Dataclass-generated ``__init__``/``__eq__`` bodies compile from a
    synthetic ``<string>`` file, so object-construction churn of Message,
    NodeRef and friends is reported as its own ``dataclass_init`` bucket.
    """
    normalized = filename.replace("\\", "/")
    for category, fragment, names in HOTPATH_CATEGORIES:
        if fragment in normalized and (names is None or function in names):
            return category
    if normalized.startswith("<") and function in ("__init__", "__eq__", "__hash__"):
        return "dataclass_init"
    return "other"


@dataclass
class HotpathReport:
    """Per-category timing (and optional allocation) attribution."""

    wall_s: float
    #: category -> {"tottime_s": float, "calls": float}
    categories: dict = field(default_factory=dict)
    #: category -> {"kib": float, "blocks": float} (``None`` without tracemalloc)
    allocations: Optional[dict] = None

    @property
    def profiled_s(self) -> float:
        """Total tottime across all categories (excludes profiler overhead)."""
        return sum(entry["tottime_s"] for entry in self.categories.values())

    def as_dict(self) -> dict:
        """JSON-ready rendering (what ``profile_protocol.py --json`` writes)."""
        payload = {
            "wall_s": round(self.wall_s, 4),
            "categories": {
                name: {"tottime_s": round(entry["tottime_s"], 4),
                       "calls": int(entry["calls"])}
                for name, entry in sorted(self.categories.items())
            },
        }
        if self.allocations is not None:
            payload["allocations"] = {
                name: {"kib": round(entry["kib"], 1),
                       "blocks": int(entry["blocks"])}
                for name, entry in sorted(self.allocations.items())
            }
        return payload

    def render(self, per: int = 0, unit: str = "commit") -> str:
        """An aligned text table, optionally with a per-unit cost column."""
        lines = [f"wall {self.wall_s:.3f}s, profiled tottime {self.profiled_s:.3f}s"]
        header = f"{'category':<18} {'tottime_s':>10} {'%':>6} {'calls':>12}"
        if per:
            header += f" {'calls/' + unit:>14}"
        if self.allocations is not None:
            header += f" {'alloc_kib':>10}"
        lines.append(header)
        total = self.profiled_s or 1.0
        ordered = sorted(self.categories.items(),
                         key=lambda item: item[1]["tottime_s"], reverse=True)
        for name, entry in ordered:
            row = (f"{name:<18} {entry['tottime_s']:>10.3f} "
                   f"{100.0 * entry['tottime_s'] / total:>5.1f}% "
                   f"{int(entry['calls']):>12}")
            if per:
                row += f" {entry['calls'] / per:>14.1f}"
            if self.allocations is not None:
                kib = self.allocations.get(name, {}).get("kib", 0.0)
                row += f" {kib:>10.1f}"
            lines.append(row)
        return "\n".join(lines)


class HotpathProfiler:
    """Context manager profiling one measured region with category attribution.

    ``allocations=True`` additionally runs ``tracemalloc`` across the
    region and attributes allocated KiB to the same categories (by the
    allocation site's filename).  Allocation tracking slows the region
    down noticeably, so it is off by default and timing numbers from an
    allocation-enabled run should not be compared against plain runs.
    """

    def __init__(self, *, allocations: bool = False) -> None:
        self.allocations = allocations
        self._profile = cProfile.Profile()
        self._wall = 0.0
        self._snapshot = None
        self._started = 0.0

    def __enter__(self) -> "HotpathProfiler":
        if self.allocations:
            import tracemalloc

            tracemalloc.start(1)
        self._started = time.perf_counter()
        self._profile.enable()
        return self

    def __exit__(self, *exc_info) -> None:
        self._profile.disable()
        self._wall = time.perf_counter() - self._started
        if self.allocations:
            import tracemalloc

            self._snapshot = tracemalloc.take_snapshot()
            tracemalloc.stop()

    def report(self) -> HotpathReport:
        """Aggregate the profiled region into a :class:`HotpathReport`."""
        stats = pstats.Stats(self._profile)
        categories: dict = {}
        for (filename, _line, function), row in stats.stats.items():  # type: ignore[attr-defined]
            calls, _primitive, tottime, _cumtime = row[0], row[1], row[2], row[3]
            entry = categories.setdefault(
                categorize(filename, function), {"tottime_s": 0.0, "calls": 0}
            )
            entry["tottime_s"] += tottime
            entry["calls"] += calls
        allocations = None
        if self._snapshot is not None:
            allocations = {}
            for stat in self._snapshot.statistics("filename"):
                frame = stat.traceback[0]
                entry = allocations.setdefault(
                    categorize(frame.filename, ""), {"kib": 0.0, "blocks": 0}
                )
                entry["kib"] += stat.size / 1024.0
                entry["blocks"] += stat.count
        return HotpathReport(
            wall_s=self._wall, categories=categories, allocations=allocations
        )
