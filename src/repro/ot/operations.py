"""Line-based text operations.

The So6 synchronizer used by the paper (refs [13]/[14]) works on sequences
of lines; its operations are *insert line at position* and *delete line at
position*.  This module defines those operations plus the identity
operation produced when two concurrent deletions cancel out during
transformation.

Positions are zero-based indices into the document's line list.  An insert
at position ``p`` places the new line *before* the current line ``p`` (so
``p == len(lines)`` appends).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

from ..errors import InvalidOperation


@dataclass(frozen=True)
class InsertLine:
    """Insert ``line`` so that it becomes line number ``position``."""

    position: int
    line: str
    origin: str = ""

    def __post_init__(self) -> None:
        if self.position < 0:
            raise InvalidOperation(f"insert position must be >= 0, got {self.position}")

    def apply(self, lines: Sequence[str]) -> list[str]:
        """Return a new line list with the insertion applied."""
        if self.position > len(lines):
            raise InvalidOperation(
                f"insert position {self.position} beyond document of {len(lines)} lines"
            )
        result = list(lines)
        result.insert(self.position, self.line)
        return result

    def inverse(self) -> "DeleteLine":
        """The operation undoing this insertion."""
        return DeleteLine(self.position, self.line, origin=self.origin)

    def describe(self) -> str:
        """Short human-readable form (used in traces and examples)."""
        return f"ins@{self.position}:{self.line!r}"


@dataclass(frozen=True)
class DeleteLine:
    """Delete the line currently at ``position`` (expected to equal ``line``)."""

    position: int
    line: str = ""
    origin: str = ""

    def __post_init__(self) -> None:
        if self.position < 0:
            raise InvalidOperation(f"delete position must be >= 0, got {self.position}")

    def apply(self, lines: Sequence[str]) -> list[str]:
        """Return a new line list with the deletion applied."""
        if self.position >= len(lines):
            raise InvalidOperation(
                f"delete position {self.position} beyond document of {len(lines)} lines"
            )
        result = list(lines)
        del result[self.position]
        return result

    def inverse(self) -> "InsertLine":
        """The operation undoing this deletion."""
        return InsertLine(self.position, self.line, origin=self.origin)

    def describe(self) -> str:
        """Short human-readable form (used in traces and examples)."""
        return f"del@{self.position}:{self.line!r}"


@dataclass(frozen=True)
class NoOp:
    """The identity operation (result of transforming away a cancelled edit)."""

    origin: str = ""

    def apply(self, lines: Sequence[str]) -> list[str]:
        """Return the lines unchanged (as a copy, matching the other ops)."""
        return list(lines)

    def inverse(self) -> "NoOp":
        """No-op is its own inverse."""
        return self

    def describe(self) -> str:
        """Short human-readable form (used in traces and examples)."""
        return "noop"


#: Union of all operation types handled by the engine.
TextOperation = Union[InsertLine, DeleteLine, NoOp]


def is_noop(operation: TextOperation) -> bool:
    """``True`` for :class:`NoOp` operations."""
    return isinstance(operation, NoOp)
