"""Property-based fuzzing of the commit pipelines under churn.

Random interleavings of edits, batch flushes, synchronisations, Master
departures/re-elections and peer churn are generated deterministically from
a seed (via :mod:`repro.sim.rng`) and replayed against a fresh system; at
the end the paper's invariants (dense timestamps, prefix-complete log,
OT convergence — see ``test_invariants.py``) must hold.

On a violation the harness *shrinks* the failing run to the shortest action
prefix that still fails and reports the seed plus prefix length, so every
failure is reproducible with one function call::

    run_actions(seed=<seed>, batched=<batched>,
                actions=generate_actions(<seed>)[:<prefix>])
"""

import pytest

from repro.core import LtrConfig, LtrSystem
from repro.errors import ReproError
from repro.net import ConstantLatency
from repro.sim.rng import RandomStreams

from test_invariants import assert_system_invariants

KEYS = ("xwiki:fuzz-a", "xwiki:fuzz-b")
PEERS = 8
WRITERS = 3  # the first WRITERS peers edit and are protected from churn
STEPS = 24
MIN_LIVE_PEERS = 5


def generate_actions(seed: int, steps: int = STEPS) -> list[tuple]:
    """A deterministic action script; every choice is pre-drawn.

    Action forms (all fields drawn here so any prefix replays identically):

    * ``("edit", writer_index, key, revision_lines)``
    * ``("flush", writer_index, key)`` — no-op on the unbatched path
    * ``("sync", writer_index, key)``
    * ``("join", tag)``
    * ``("depart_master", key, crash?)`` — re-election of the key's Master
    * ``("checkpoint", key)`` — force a checkpoint at the current last-ts
    * ``("gc", key)`` — re-apply the checkpoint retention window
    * ``("cold_join", tag, key)`` — a fresh peer joins and cold-syncs ``key``
    * ``("settle", seconds)``
    """
    rng = RandomStreams(seed).stream("fuzz-actions")
    actions: list[tuple] = []
    for step in range(steps):
        roll = rng.random()
        if roll < 0.40:
            lines = rng.randint(1, 4)
            actions.append(("edit", rng.randrange(WRITERS), rng.choice(KEYS),
                            [f"r{step}l{line}" for line in range(lines)]))
        elif roll < 0.52:
            actions.append(("flush", rng.randrange(WRITERS), rng.choice(KEYS)))
        elif roll < 0.60:
            actions.append(("sync", rng.randrange(WRITERS), rng.choice(KEYS)))
        elif roll < 0.66:
            actions.append(("join", step))
        elif roll < 0.74:
            actions.append(("depart_master", rng.choice(KEYS), rng.random() < 0.5))
        elif roll < 0.80:
            actions.append(("checkpoint", rng.choice(KEYS)))
        elif roll < 0.85:
            actions.append(("gc", rng.choice(KEYS)))
        elif roll < 0.91:
            actions.append(("cold_join", step, rng.choice(KEYS)))
        else:
            actions.append(("settle", round(rng.uniform(0.5, 2.0), 3)))
    return actions


def run_actions(seed: int, batched: bool, actions: list[tuple]) -> None:
    """Replay an action script and assert the invariants at the end.

    Both pipelines run with the checkpointing subsystem enabled (small
    interval, grouped fetch) so the fuzz covers checkpoint production, GC
    and cold-start syncs interleaved with flushes, churn and re-elections.
    """
    checkpointing = {
        "checkpoint_enabled": True,
        "checkpoint_interval": 4,
        "checkpoint_retention": 2,
        "grouped_fetch": True,
    }
    config = (
        LtrConfig(batch_enabled=True, batch_max_edits=4, **checkpointing)
        if batched else LtrConfig(**checkpointing)
    )
    system = LtrSystem(ltr_config=config, seed=seed, latency=ConstantLatency(0.004))
    system.bootstrap(PEERS)
    writers = system.peer_names()[:WRITERS]

    for action in actions:
        try:
            _replay_honest_action(system, writers, batched, action)
        except ReproError:
            # A commit racing a membership change may fail; the edits stay
            # pending/staged and the invariants must still hold at the end.
            continue

    system.run_for(3.0)
    if batched:
        for writer in writers:
            for key in KEYS:
                try:
                    system.flush(writer, key)
                except ReproError:
                    system.user(writer).discard_batch(key)
    assert_system_invariants(system, KEYS)


def _failure(seed: int, batched: bool, actions: list[tuple]):
    try:
        run_actions(seed, batched, actions)
    except (AssertionError, ReproError) as exc:
        return exc
    return None


def _shrink(seed: int, batched: bool, actions: list[tuple]) -> int:
    """Shortest failing prefix length (invariants are end-checked, so any
    prefix is itself a complete, smaller scenario)."""
    best = len(actions)
    candidate = best // 2
    while candidate > 0 and _failure(seed, batched, actions[:candidate]) is not None:
        best = candidate
        candidate //= 2
    while best > 1 and _failure(seed, batched, actions[:best - 1]) is not None:
        best -= 1
    return best


@pytest.mark.slow
@pytest.mark.parametrize("batched", [False, True], ids=["unbatched", "batched"])
@pytest.mark.parametrize("seed", [8, 71, 512])
def test_fuzzed_interleavings_preserve_invariants(seed, batched):
    actions = generate_actions(seed)
    failure = _failure(seed, batched, actions)
    if failure is None:
        return
    prefix = _shrink(seed, batched, actions)
    pytest.fail(
        f"commit invariants violated: {failure!r}\n"
        f"reproduce with: run_actions(seed={seed}, batched={batched}, "
        f"actions=generate_actions({seed})[:{prefix}])"
    )


def test_action_scripts_are_deterministic():
    """The same seed draws the same script (reproducibility contract)."""
    assert generate_actions(99) == generate_actions(99)
    assert generate_actions(99) != generate_actions(100)


# ---------------------------------------------------------------------------
# Byzantine extension: tamper / replay / equivocate in the action grammar
# ---------------------------------------------------------------------------
#
# Signed-mode runs add three adversarial action forms.  The invariant is
# weaker than the honest grammar's — byzantine lies *may* break the commit
# invariants — but it is never vacuous: a run must either stay clean
# (every lie masked by replication and signature-checked retrieval) or the
# convergence checker must report a violation.  Failing both — broken
# invariants with a silent checker — is the bug class this fuzz hunts.

ADVERSARIAL_STEPS = 20


def generate_adversarial_actions(seed: int,
                                 steps: int = ADVERSARIAL_STEPS) -> list[tuple]:
    """The honest grammar plus byzantine action forms (all draws up front):

    * ``("tamper", victim_slot, mode)`` — wrap the victim's storage in a
      :class:`~repro.faults.MisbehavingStore` (``mode`` is ``corrupt`` or
      ``drop``)
    * ``("replay", victim_slot)`` — same wrapper in replay mode
    * ``("unwrap", victim_slot)`` — restore the victim's honest storage
    * ``("equivocate", key)`` — arm the key's Master to fork its next
      validation across placements
    """
    rng = RandomStreams(seed).stream("adversarial-actions")
    honest = generate_actions(seed, steps)
    actions: list[tuple] = []
    for action in honest:
        roll = rng.random()
        if roll < 0.10:
            actions.append(("tamper", rng.randrange(PEERS - WRITERS),
                            rng.choice(("corrupt", "drop"))))
        elif roll < 0.15:
            actions.append(("replay", rng.randrange(PEERS - WRITERS)))
        elif roll < 0.19:
            actions.append(("unwrap", rng.randrange(PEERS - WRITERS)))
        elif roll < 0.26:
            actions.append(("equivocate", rng.choice(KEYS)))
        actions.append(action)
    return actions


def run_adversarial_actions(seed: int, batched: bool,
                            actions: list[tuple]) -> None:
    """Replay a byzantine action script in signed mode; converge or report.

    Raises AssertionError only on *silent divergence*: the end-state
    invariants are broken and the checker recorded no violation.
    """
    from repro.check import ConvergenceChecker
    from repro.faults import MisbehavingStore

    checkpointing = {
        "auth_enabled": True,
        "checkpoint_enabled": True,
        "checkpoint_interval": 4,
        "checkpoint_retention": 2,
        "grouped_fetch": True,
    }
    config = (
        LtrConfig(batch_enabled=True, batch_max_edits=4, **checkpointing)
        if batched else LtrConfig(**checkpointing)
    )
    system = LtrSystem(ltr_config=config, seed=seed, latency=ConstantLatency(0.004))
    system.bootstrap(PEERS)
    writers = system.peer_names()[:WRITERS]
    bystanders = system.peer_names()[WRITERS:]

    def victim(slot: int):
        name = bystanders[slot % len(bystanders)]
        node = system.ring.nodes.get(name)
        return node if node is not None and node.alive else None

    for action in actions:
        kind = action[0]
        try:
            if kind in ("tamper", "replay"):
                mode = action[2] if kind == "tamper" else "replay"
                node = victim(action[1])
                if node is None:
                    continue
                store = node.storage
                if isinstance(store, MisbehavingStore):
                    store = store._inner
                node.storage = MisbehavingStore(store, mode=mode, every=2)
            elif kind == "unwrap":
                node = victim(action[1])
                if node is not None and isinstance(node.storage, MisbehavingStore):
                    node.storage = node.storage._inner
            elif kind == "equivocate":
                master = system.master_of(action[1])
                service = system.ring.node(master).service("ltr-master")
                service.equivocate_next += 1
            else:
                _replay_honest_action(system, writers, batched, action)
        except ReproError:
            continue

    system.run_for(3.0)
    if batched:
        for writer in writers:
            for key in KEYS:
                try:
                    system.flush(writer, key)
                except ReproError:
                    system.user(writer).discard_batch(key)

    clean = True
    try:
        assert_system_invariants(system, KEYS)
    except (AssertionError, ReproError):
        clean = False
    if clean:
        return
    checker = ConvergenceChecker(keys=list(KEYS))
    snapshot = checker.check_now(system, label="adversarial-end")
    assert snapshot.violations, (
        "silent divergence: byzantine run broke the commit invariants and "
        "the checker reported nothing"
    )


def _replay_honest_action(system, writers, batched, action) -> None:
    """One honest-grammar action against ``system`` (shared replay body)."""
    kind = action[0]
    if kind == "edit":
        _, writer_index, key, lines = action
        writer = writers[writer_index]
        text = "\n".join(f"{line} by {writer}" for line in lines)
        if batched:
            system.stage(writer, key, text)
        else:
            system.edit_and_commit(writer, key, text)
    elif kind == "flush":
        _, writer_index, key = action
        if batched:
            system.flush(writers[writer_index], key)
        else:
            system.commit(writers[writer_index], key)
    elif kind == "sync":
        _, writer_index, key = action
        system.sync(writers[writer_index], key)
    elif kind == "join":
        system.add_peer(f"fuzz-joiner-{action[1]}")
    elif kind == "depart_master":
        _, key, crash = action
        master = system.master_of(key)
        if master in writers or len(system.peer_names()) <= MIN_LIVE_PEERS:
            return
        if crash:
            system.crash(master)
        else:
            system.leave(master)
    elif kind == "checkpoint":
        system.checkpoint_now(action[1])
    elif kind == "gc":
        system.gc_checkpoints(action[1])
    elif kind == "cold_join":
        _, tag, key = action
        name = f"cold-joiner-{tag}"
        system.add_peer(name)
        system.sync(name, key)
    elif kind == "settle":
        system.run_for(action[1])


def _adversarial_failure(seed: int, batched: bool, actions: list[tuple]):
    try:
        run_adversarial_actions(seed, batched, actions)
    except AssertionError as exc:
        return exc
    return None


def _shrink_adversarial(seed: int, batched: bool, actions: list[tuple]) -> int:
    best = len(actions)
    candidate = best // 2
    while candidate > 0 and _adversarial_failure(
            seed, batched, actions[:candidate]) is not None:
        best = candidate
        candidate //= 2
    while best > 1 and _adversarial_failure(
            seed, batched, actions[:best - 1]) is not None:
        best -= 1
    return best


def test_adversarial_scripts_are_deterministic():
    assert generate_adversarial_actions(99) == generate_adversarial_actions(99)
    assert generate_adversarial_actions(99) != generate_adversarial_actions(100)
    kinds = {action[0] for action in generate_adversarial_actions(99)}
    assert kinds & {"tamper", "replay", "equivocate"}, (
        "the adversarial grammar drew no byzantine actions at this seed"
    )


def test_adversarial_smoke_seed_converges_or_reports():
    """One fast signed-mode byzantine run (the CI adversarial-smoke gate)."""
    actions = generate_adversarial_actions(8)
    failure = _adversarial_failure(8, False, actions)
    if failure is None:
        return
    prefix = _shrink_adversarial(8, False, actions)
    pytest.fail(
        f"silent divergence: {failure!r}\n"
        f"reproduce with: run_adversarial_actions(seed=8, batched=False, "
        f"actions=generate_adversarial_actions(8)[:{prefix}])"
    )


@pytest.mark.slow
@pytest.mark.parametrize("batched", [False, True], ids=["unbatched", "batched"])
@pytest.mark.parametrize("seed", [8, 71, 512])
def test_fuzzed_byzantine_interleavings_converge_or_report(seed, batched):
    actions = generate_adversarial_actions(seed)
    failure = _adversarial_failure(seed, batched, actions)
    if failure is None:
        return
    prefix = _shrink_adversarial(seed, batched, actions)
    pytest.fail(
        f"silent divergence: {failure!r}\n"
        f"reproduce with: run_adversarial_actions(seed={seed}, "
        f"batched={batched}, "
        f"actions=generate_adversarial_actions({seed})[:{prefix}])"
    )
