"""Experiment implementations: one function per scenario/figure of the paper.

Each function builds the systems it needs, replays the corresponding
workload, and returns a :class:`~repro.metrics.ResultTable` whose rows are
what the paper's demonstration shows qualitatively (and what its prototype
measures as "correctness and response times").  The benchmark modules under
``benchmarks/`` and the ``EXPERIMENTS.md`` generator both call these
functions; see ``DESIGN.md`` for the experiment-id ↔ paper-artefact mapping.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..baselines import CentralSystem, LwwSystem
from ..chord import ChordConfig, ChordRing
from ..core import LtrConfig, LtrSystem
from ..dht import ChordDhtClient
from ..errors import KeyNotFound, MasterUnavailable, PatchUnavailable
from ..kts import KtsClient, TimestampAuthority
from ..metrics import ResultTable, jains_fairness, summarize
from ..net import ConstantLatency, latency_preset
from ..p2plog import P2PLogClient
from ..workloads import generate_corpus

#: Chord settings shared by all experiments (small id space keeps hashing cheap).
EXPERIMENT_CHORD_CONFIG = ChordConfig(
    bits=32,
    successor_list_size=4,
    replication_factor=2,
    stabilize_interval=0.25,
    fix_fingers_interval=0.5,
    check_predecessor_interval=0.5,
)


def _build_system(peers: int, *, seed: int, latency=None, ltr_config: Optional[LtrConfig] = None) -> LtrSystem:
    system = LtrSystem(
        ltr_config=ltr_config if ltr_config is not None else LtrConfig(),
        chord_config=EXPERIMENT_CHORD_CONFIG,
        seed=seed,
        latency=latency if latency is not None else ConstantLatency(0.005),
    )
    system.bootstrap(peers)
    return system


# ---------------------------------------------------------------------------
# E1 — Timestamp generation (Figure 4)
# ---------------------------------------------------------------------------


def experiment_timestamp_generation(
    peer_counts: Sequence[int] = (8, 16, 32),
    documents: int = 48,
    updates_per_document: int = 3,
    seed: int = 1,
) -> ResultTable:
    """Continuous timestamp generation distributed over the Master-key peers.

    For each ring size, every document receives ``updates_per_document``
    timestamps; the table reports how responsibility spreads over peers
    (Jain's fairness index), the mean ``gen_ts`` response time and whether
    every per-document sequence is continuous (1..k with no gap).
    """
    table = ResultTable(
        title="E1 Timestamp generation across the DHT",
        columns=[
            "peers", "documents", "masters_used", "max_keys_per_master",
            "fairness", "mean_gen_ts_latency_s", "continuous_sequences",
        ],
    )
    corpus = generate_corpus(documents, seed=seed)
    for peers in peer_counts:
        ring = ChordRing(
            config=EXPERIMENT_CHORD_CONFIG,
            seed=seed + peers,
            latency=ConstantLatency(0.005),
            service_factory=lambda address: [TimestampAuthority()],
        )
        ring.bootstrap(peers)
        gateway = ring.gateway()
        kts = KtsClient(ChordDhtClient(gateway))
        latencies = []
        for document in corpus:
            for _ in range(updates_per_document):
                started = ring.sim.now
                ring.sim.run(until=ring.sim.process(kts.gen_ts(document.key)))
                latencies.append(ring.sim.now - started)
        per_master = {
            node.address.name: len(node.service("kts").managed_keys())
            for node in ring.live_nodes()
        }
        continuous = all(
            ring.sim.run(until=ring.sim.process(kts.last_ts(document.key)))
            == updates_per_document
            for document in corpus
        )
        loads = [count for count in per_master.values()]
        table.add_row(
            peers=peers,
            documents=len(corpus),
            masters_used=sum(1 for count in loads if count > 0),
            max_keys_per_master=max(loads),
            fairness=round(jains_fairness(loads), 3),
            mean_gen_ts_latency_s=summarize(latencies).mean,
            continuous_sequences=continuous,
        )
    table.add_note(
        "paper claim: each Master-key peer is responsible for a subset of the "
        "documents and timestamps are continuous (ts' = ts + 1)"
    )
    return table


# ---------------------------------------------------------------------------
# E2 — Concurrent patch publishing (Figure 5)
# ---------------------------------------------------------------------------


def experiment_concurrent_publishing(
    updater_counts: Sequence[int] = (2, 4, 8),
    peers: int = 16,
    seed: int = 2,
) -> ResultTable:
    """Concurrent updates on one document: serialization, retrieval, consistency."""
    table = ResultTable(
        title="E2 Concurrent patch publishing on a single document",
        columns=[
            "updaters", "validated_ts", "mean_attempts", "mean_retrieved",
            "mean_commit_latency_s", "p95_commit_latency_s", "converged",
        ],
    )
    for updaters in updater_counts:
        system = _build_system(max(peers, updaters), seed=seed + updaters)
        key = f"xwiki:hot-{updaters}"
        names = system.peer_names()[:updaters]
        results = system.run_concurrent_commits(
            [(name, key, f"contribution from {name}") for name in names]
        )
        report = system.check_consistency(key)
        latencies = [result.latency for result in results]
        table.add_row(
            updaters=updaters,
            validated_ts=system.last_ts(key),
            mean_attempts=summarize([result.attempts for result in results]).mean,
            mean_retrieved=summarize([result.retrieved_patches for result in results]).mean,
            mean_commit_latency_s=summarize(latencies).mean,
            p95_commit_latency_s=summarize(latencies).p95,
            converged=report.converged,
        )
    table.add_note(
        "paper claim: concurrent updates are serialized by the Master-key peer "
        "(continuous timestamps) and retrieval returns missing patches in total order"
    )
    return table


# ---------------------------------------------------------------------------
# E3 — Master-key peer departures (normal and failure)
# ---------------------------------------------------------------------------


def experiment_master_departure(
    events: Sequence[str] = ("leave", "crash", "leave", "crash"),
    peers: int = 12,
    seed: int = 3,
) -> ResultTable:
    """Timestamp continuity across Master-key departures and crashes."""
    table = ResultTable(
        title="E3 Master-key peer departures",
        columns=[
            "event", "ts_before", "ts_after_recovery", "new_master_differs",
            "next_commit_ts", "continuity_preserved", "converged",
        ],
    )
    system = _build_system(peers, seed=seed)
    key = "xwiki:departures"
    expected_ts = 0
    for event in events:
        writer = system.peer_names()[0]
        expected_ts += 1
        system.edit_and_commit(writer, key, f"content before {event} #{expected_ts}")
        system.run_for(2.0)  # let counter/log replicas settle
        old_master = system.master_of(key)
        ts_before = system.last_ts(key)
        if event == "leave":
            system.leave(old_master)
        else:
            system.crash(old_master)
        new_master = system.master_of(key)
        ts_after = system.last_ts(key)
        writer = system.peer_names()[0]
        expected_ts += 1
        result = system.edit_and_commit(writer, key, f"content after {event} #{expected_ts}")
        report = system.check_consistency(key)
        table.add_row(
            event=event,
            ts_before=ts_before,
            ts_after_recovery=ts_after,
            new_master_differs=new_master != old_master,
            next_commit_ts=result.ts,
            continuity_preserved=result.ts == ts_before + 1,
            converged=report.converged,
        )
    table.add_note(
        "paper claim: keys and last-ts transfer to the Master-key-Succ so the "
        "timestamp sequence continues without gaps"
    )
    return table


# ---------------------------------------------------------------------------
# E4 — New Master-key peer joining
# ---------------------------------------------------------------------------


def experiment_master_join(
    joiners: int = 3,
    peers: int = 8,
    documents: int = 24,
    seed: int = 4,
) -> ResultTable:
    """Key/timestamp hand-over to newly joining Master-key peers."""
    table = ResultTable(
        title="E4 New Master-key peer joining",
        columns=[
            "joiner", "keys_taken_over", "counters_correct",
            "post_join_commit_ok", "converged_sample",
        ],
    )
    system = _build_system(peers, seed=seed)
    corpus = generate_corpus(documents, seed=seed)
    writers = system.peer_names()
    for index, document in enumerate(corpus):
        system.edit_and_commit(writers[index % len(writers)], document.key, document.text)
    for joiner_index in range(joiners):
        name = f"joiner-{joiner_index}"
        owners_before = {document.key: system.master_of(document.key) for document in corpus}
        expected_ts = {document.key: system.last_ts(document.key) for document in corpus}
        system.add_peer(name)
        moved = [
            document.key
            for document in corpus
            if system.master_of(document.key) == name and owners_before[document.key] != name
        ]
        counters_correct = all(
            system.last_ts(key) == expected_ts[key] for key in moved
        )
        post_join_ok = True
        sample_converged = True
        if moved:
            sample_key = moved[0]
            writer = system.peer_names()[0]
            result = system.edit_and_commit(
                writer, sample_key, f"update after {name} joined"
            )
            post_join_ok = result.ts == expected_ts[sample_key] + 1
            sample_converged = system.check_consistency(sample_key).converged
        table.add_row(
            joiner=name,
            keys_taken_over=len(moved),
            counters_correct=counters_correct,
            post_join_commit_ok=post_join_ok,
            converged_sample=sample_converged,
        )
    table.add_note(
        "paper claim: the old responsible transfers its keys and timestamps to "
        "the new Master-key peer without violating eventual consistency"
    )
    return table


# ---------------------------------------------------------------------------
# E5 — Response time vs. number of peers and network latency
# ---------------------------------------------------------------------------


def experiment_response_time(
    peer_counts: Sequence[int] = (8, 16, 32),
    latency_presets: Sequence[str] = ("lan", "campus", "wan"),
    commits_per_setting: int = 10,
    seed: int = 5,
) -> ResultTable:
    """Update response time as a function of ring size and network latency."""
    table = ResultTable(
        title="E5 Update response time vs. peers and latency",
        columns=[
            "peers", "latency_preset", "mean_commit_latency_s",
            "p95_commit_latency_s", "mean_one_way_latency_s",
        ],
    )
    for peers in peer_counts:
        for preset in latency_presets:
            model = latency_preset(preset)
            system = _build_system(peers, seed=seed + peers, latency=model)
            key = f"xwiki:rt-{peers}-{preset}"
            writer = system.peer_names()[0]
            latencies = []
            for index in range(commits_per_setting):
                result = system.edit_and_commit(writer, key, f"revision {index}")
                latencies.append(result.latency)
            summary = summarize(latencies)
            table.add_row(
                peers=peers,
                latency_preset=preset,
                mean_commit_latency_s=summary.mean,
                p95_commit_latency_s=summary.p95,
                mean_one_way_latency_s=model.mean(),
            )
    table.add_note(
        "expected shape: response time scales with one-way latency (constant hop "
        "count per validation) and only logarithmically with the number of peers"
    )
    return table


# ---------------------------------------------------------------------------
# E6 — Comparison against the centralized reconciler and LWW baselines
# ---------------------------------------------------------------------------


def experiment_baseline_comparison(
    updater_counts: Sequence[int] = (2, 4, 8),
    peers: int = 16,
    seed: int = 6,
) -> ResultTable:
    """P2P-LTR vs. centralized reconciler vs. last-writer-wins."""
    table = ResultTable(
        title="E6 P2P-LTR vs. baselines",
        columns=[
            "system", "updaters", "mean_commit_latency_s", "all_updates_preserved",
            "survives_coordinator_crash", "lost_updates",
        ],
    )
    for updaters in updater_counts:
        key = f"xwiki:baseline-{updaters}"

        # --- P2P-LTR ---------------------------------------------------------
        ltr = _build_system(max(peers, updaters), seed=seed + updaters)
        names = ltr.peer_names()[:updaters]
        results = ltr.run_concurrent_commits(
            [(name, key, f"text by {name}") for name in names]
        )
        ltr_report = ltr.check_consistency(key)
        crash_survivor = True
        try:
            ltr.crash(ltr.master_of(key))
            survivor = ltr.peer_names()[0]
            ltr.edit_and_commit(survivor, key, "post-crash update")
        except MasterUnavailable:
            crash_survivor = False
        table.add_row(
            system="p2p-ltr",
            updaters=updaters,
            mean_commit_latency_s=summarize([result.latency for result in results]).mean,
            all_updates_preserved=ltr_report.converged
            and ltr_report.last_ts == updaters,
            survives_coordinator_crash=crash_survivor,
            lost_updates=0,
        )

        # --- Centralized reconciler -------------------------------------------
        central = CentralSystem(
            peer_count=max(peers, updaters), seed=seed + updaters,
            latency=ConstantLatency(0.005),
        )
        central_results = central.run_concurrent_commits(
            [(f"peer-{index}", key, f"text by peer-{index}") for index in range(updaters)]
        )
        central.crash_reconciler()
        central_survives = True
        try:
            central.edit_and_commit("peer-0", key, "post-crash update")
        except MasterUnavailable:
            central_survives = False
        table.add_row(
            system="central",
            updaters=updaters,
            mean_commit_latency_s=summarize(
                [result["latency"] for result in central_results]
            ).mean,
            all_updates_preserved=True,
            survives_coordinator_crash=central_survives,
            lost_updates=0,
        )

        # --- Last-writer-wins ----------------------------------------------------
        lww = LwwSystem.build(
            peer_count=max(peers, updaters), seed=seed + updaters,
            latency=ConstantLatency(0.005),
        )
        for index in range(updaters):
            lww.write(f"peer-{index}", key, f"text by peer-{index}")
        lww.settle(2.0)
        table.add_row(
            system="lww",
            updaters=updaters,
            mean_commit_latency_s=0.0,
            all_updates_preserved=lww.lost_updates(key) == 0,
            survives_coordinator_crash=True,
            lost_updates=lww.lost_updates(key),
        )
    table.add_note(
        "expected shape: only P2P-LTR both survives coordinator failure and "
        "preserves every concurrent contribution"
    )
    return table


# ---------------------------------------------------------------------------
# E7 — P2P-Log availability vs. replication factor |Hr|
# ---------------------------------------------------------------------------


def experiment_log_availability(
    replication_factors: Sequence[int] = (1, 2, 3),
    crashed_log_peers: int = 2,
    peers: int = 16,
    entries: int = 12,
    seed: int = 7,
) -> ResultTable:
    """Patch availability under Log-Peer failures, by replication factor."""
    table = ResultTable(
        title="E7 P2P-Log availability vs. replication factor",
        columns=[
            "replication_factor", "entries", "crashed_peers",
            "retrievable_fraction", "mean_available_placements",
        ],
    )
    for factor in replication_factors:
        system = _build_system(
            peers, seed=seed + factor,
            ltr_config=LtrConfig(log_replication_factor=factor),
        )
        key = f"xwiki:avail-{factor}"
        writer = system.peer_names()[0]
        for index in range(entries):
            system.edit_and_commit(writer, key, f"revision {index}")
        system.run_for(2.0)
        log = system.log_client()
        # crash peers that hold log placements (but never the writer itself)
        victims = []
        for ts in range(1, entries + 1):
            for _, identifier in log.placements(key, ts):
                owner = system.ring.responsible_node_for_id(identifier).address.name
                if owner != writer and owner not in victims:
                    victims.append(owner)
            if len(victims) >= crashed_log_peers:
                break
        for victim in victims[:crashed_log_peers]:
            system.crash(victim)
        log = system.log_client(via=writer)
        retrievable = 0
        placements_alive = []
        for ts in range(1, entries + 1):
            try:
                system.sim.run(until=system.sim.process(log.fetch(key, ts)))
                retrievable += 1
            except (PatchUnavailable, KeyNotFound):
                pass
            placements_alive.append(
                system.sim.run(until=system.sim.process(log.availability(key, ts)))
            )
        table.add_row(
            replication_factor=factor,
            entries=entries,
            crashed_peers=len(victims[:crashed_log_peers]),
            retrievable_fraction=retrievable / entries,
            mean_available_placements=summarize(placements_alive).mean,
        )
    table.add_note(
        "expected shape: availability rises sharply with |Hr|; with the DHT's own "
        "successor replication even |Hr|=1 usually survives a single crash"
    )
    return table


# ---------------------------------------------------------------------------
# E8 — Chord substrate health (lookup correctness and hop counts)
# ---------------------------------------------------------------------------


def experiment_chord_lookup(
    peer_counts: Sequence[int] = (8, 16, 32),
    lookups: int = 40,
    seed: int = 8,
) -> ResultTable:
    """Lookup correctness and hop counts of the Chord substitute."""
    table = ResultTable(
        title="E8 Chord lookup correctness and hop count",
        columns=["peers", "lookups", "correct_fraction", "mean_hops", "max_hops"],
    )
    for peers in peer_counts:
        ring = ChordRing(
            config=EXPERIMENT_CHORD_CONFIG, seed=seed + peers,
            latency=ConstantLatency(0.003),
        )
        ring.bootstrap(peers)
        ring.run_for(20.0)  # let fix_fingers converge
        correct = 0
        hops = []
        for index in range(lookups):
            key = f"lookup-key-{index}"
            answer = ring.lookup(key, via=ring.ring_order()[index % peers])
            hops.append(answer["hops"])
            if answer["node"] == ring.responsible_node(key).ref:
                correct += 1
        table.add_row(
            peers=peers,
            lookups=lookups,
            correct_fraction=correct / lookups,
            mean_hops=summarize(hops).mean,
            max_hops=max(hops),
        )
    table.add_note("expected shape: hop count grows logarithmically with ring size")
    return table


def iter_all_experiments() -> Iterable[tuple[str, callable]]:
    """(experiment id, function) pairs in paper order."""
    return [
        ("E1", experiment_timestamp_generation),
        ("E2", experiment_concurrent_publishing),
        ("E3", experiment_master_departure),
        ("E4", experiment_master_join),
        ("E5", experiment_response_time),
        ("E6", experiment_baseline_comparison),
        ("E7", experiment_log_availability),
        ("E8", experiment_chord_lookup),
    ]
