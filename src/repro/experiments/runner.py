"""Experiment runner: execute the scenarios and collect their tables.

``python -m repro.experiments`` runs everything with the default (quick)
parameters and prints the tables; the pytest-benchmark modules call
individual experiments with their own parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..metrics import ResultTable, render_tables
from . import scenarios

#: Parameter overrides for a fast smoke run of every experiment.
QUICK_PARAMETERS: dict[str, dict] = {
    "E1": {"peer_counts": (8, 16), "documents": 24, "updates_per_document": 2},
    "E2": {"updater_counts": (2, 4), "peers": 10},
    "E3": {"events": ("leave", "crash"), "peers": 10},
    "E4": {"joiners": 2, "peers": 6, "documents": 12},
    "E5": {"peer_counts": (8, 16), "latency_presets": ("lan", "wan"), "commits_per_setting": 5},
    "E6": {"updater_counts": (2, 4), "peers": 10},
    "E7": {"replication_factors": (1, 2, 3), "crashed_log_peers": 1, "peers": 12, "entries": 6},
    "E8": {"peer_counts": (8, 16), "lookups": 20},
}

#: Parameters closer to the paper's demonstration scale (slower).
FULL_PARAMETERS: dict[str, dict] = {
    "E1": {"peer_counts": (8, 16, 32, 64), "documents": 64, "updates_per_document": 3},
    "E2": {"updater_counts": (2, 4, 8, 16), "peers": 24},
    "E3": {"events": ("leave", "crash", "leave", "crash"), "peers": 16},
    "E4": {"joiners": 4, "peers": 12, "documents": 32},
    "E5": {"peer_counts": (8, 16, 32), "latency_presets": ("lan", "campus", "wan"),
           "commits_per_setting": 10},
    "E6": {"updater_counts": (2, 4, 8), "peers": 16},
    "E7": {"replication_factors": (1, 2, 3, 4), "crashed_log_peers": 2, "peers": 16,
           "entries": 12},
    "E8": {"peer_counts": (8, 16, 32, 64), "lookups": 40},
}


@dataclass
class ExperimentRun:
    """The outcome of running one experiment."""

    experiment_id: str
    table: ResultTable
    parameters: dict = field(default_factory=dict)


def run_experiment(experiment_id: str, *, quick: bool = True,
                   overrides: Optional[dict] = None) -> ExperimentRun:
    """Run one experiment by id (``"E1"`` .. ``"E8"``)."""
    functions: dict[str, Callable[..., ResultTable]] = dict(scenarios.iter_all_experiments())
    if experiment_id not in functions:
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {sorted(functions)}")
    parameters = dict((QUICK_PARAMETERS if quick else FULL_PARAMETERS).get(experiment_id, {}))
    if overrides:
        parameters.update(overrides)
    table = functions[experiment_id](**parameters)
    return ExperimentRun(experiment_id=experiment_id, table=table, parameters=parameters)


def run_all(*, quick: bool = True, only: Optional[Sequence[str]] = None) -> list[ExperimentRun]:
    """Run every experiment (or the subset in ``only``) and return the results."""
    runs = []
    for experiment_id, _function in scenarios.iter_all_experiments():
        if only is not None and experiment_id not in only:
            continue
        runs.append(run_experiment(experiment_id, quick=quick))
    return runs


def render_runs(runs: Sequence[ExperimentRun]) -> str:
    """Human-readable rendering of a list of experiment runs."""
    return render_tables([run.table for run in runs])
