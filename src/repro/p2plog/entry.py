"""Log entries: the unit of storage of the P2P-Log.

A :class:`LogEntry` records one validated patch of one document together
with its continuous timestamp and provenance.  Entries are immutable: the
log is append-only and a ``(document key, timestamp)`` pair is never
rewritten, which is what makes the multi-placement replication of the
P2P-Log trivially consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass(frozen=True)
class LogEntry:
    """One timestamped patch stored in the P2P-Log.

    Attributes
    ----------
    document_key:
        The document (page) this patch applies to.
    ts:
        The continuous timestamp assigned by the Master-key peer
        (``ts = previous ts + 1``).
    patch:
        The patch payload.  The P2P-Log treats it as opaque; in this
        reproduction it is a :class:`repro.ot.Patch` most of the time.
    author:
        Name of the user peer that produced the patch.
    published_at:
        Simulated time at which the Master-key peer published the entry.
    base_ts:
        The timestamp of the document state the author edited (i.e. the
        patch was generated against the state after applying ``base_ts``
        patches).  Used by the reconciliation engine to transform the patch
        against concurrent ones.
    metadata:
        Optional free-form annotations (experiment ids, sizes, ...).
    """

    document_key: str
    ts: int
    patch: Any
    author: str = "unknown"
    published_at: float = 0.0
    base_ts: Optional[int] = None
    metadata: dict[str, Any] = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if self.ts < 1:
            raise ValueError(f"log timestamps start at 1, got {self.ts}")

    @property
    def log_key(self) -> str:
        """The logical ``key + ts`` string hashed by the replication functions."""
        return make_log_key(self.document_key, self.ts)

    def describe(self) -> str:
        """One-line human readable description (used in traces)."""
        return f"{self.document_key}@{self.ts} by {self.author}"


def make_log_key(document_key: str, ts: int) -> str:
    """The canonical ``key + ts`` string used for log placement hashing."""
    if ts < 1:
        raise ValueError(f"log timestamps start at 1, got {ts}")
    return f"{document_key}#{ts}"


# -- wire registration (see repro.net.codec) ---------------------------------
# The OT layer sits below the network and cannot register its own types;
# the P2P-Log is the layer that ships patches (inside log entries and
# validation payloads) over RPC, so the patch family registers here.

from ..net.codec import register_wire_type  # noqa: E402
from ..ot.operations import DeleteLine, InsertLine, NoOp  # noqa: E402
from ..ot.patch import Patch  # noqa: E402

register_wire_type(
    InsertLine,
    "op-ins",
    pack=lambda obj, enc: [obj.position, obj.line, obj.origin],
    unpack=lambda body, dec: InsertLine(body[0], body[1], body[2]),
)

register_wire_type(
    DeleteLine,
    "op-del",
    pack=lambda obj, enc: [obj.position, obj.line, obj.origin],
    unpack=lambda body, dec: DeleteLine(body[0], body[1], body[2]),
)

register_wire_type(
    NoOp,
    "op-noop",
    pack=lambda obj, enc: obj.origin,
    unpack=lambda body, dec: NoOp(body),
)

register_wire_type(
    Patch,
    "patch",
    pack=lambda obj, enc: [
        [enc(op) for op in obj.operations], obj.base_ts, obj.author, obj.comment,
    ],
    unpack=lambda body, dec: Patch(
        operations=tuple(dec(op) for op in body[0]),
        base_ts=body[1], author=body[2], comment=body[3],
    ),
)

register_wire_type(
    LogEntry,
    "log-entry",
    pack=lambda obj, enc: [
        obj.document_key, obj.ts, enc(obj.patch), obj.author,
        obj.published_at, obj.base_ts, enc(obj.metadata),
    ],
    unpack=lambda body, dec: LogEntry(
        document_key=body[0], ts=body[1], patch=dec(body[2]), author=body[3],
        published_at=body[4], base_ts=body[5], metadata=dec(body[6]),
    ),
    copy=lambda obj, copier: LogEntry(
        document_key=obj.document_key, ts=obj.ts, patch=copier(obj.patch),
        author=obj.author, published_at=obj.published_at, base_ts=obj.base_ts,
        metadata=copier(obj.metadata),
    ),
)
