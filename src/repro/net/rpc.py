"""Remote procedure calls over the simulated network.

The paper's prototype uses Java RMI for peer-to-peer communication; this
module is its simulated stand-in.  An :class:`RpcAgent` owns an address,
registers handler functions by name, and can invoke methods on remote agents
either asynchronously (:meth:`RpcAgent.call`, returning a future to yield
on) or through the retry-aware generator helper :meth:`RpcAgent.request`.

Handlers may be plain functions (returning their result directly) or
generator functions (run as simulation processes, so a handler can itself
perform further RPCs before responding).
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Dict, Optional

from ..errors import (
    NetworkError,
    NodeUnreachable,
    ReproError,
    RequestTimeout,
    UnknownRpcMethod,
)
from ..runtime import Event, Future, Runtime
from .address import Address
from .codec import ErrorEnvelope, envelope_from_exception, exception_from_envelope
from .message import Message, MessageKind
from .transport import Network

Handler = Callable[..., Any]

#: Request ids live in an unsigned 32-bit wire field; allocation wraps
#: back to 1 at this bound instead of growing without limit.
REQUEST_ID_LIMIT = 2**32


def normalize_backend_error(exc: BaseException) -> BaseException:
    """Map raw runtime-backend failures onto the ``repro`` exception hierarchy.

    Protocol code catches :class:`~repro.errors.RequestTimeout` and
    :class:`~repro.errors.NodeUnreachable`; a backend with real timers and
    transports (the asyncio runtime, later real sockets) can instead
    surface builtin ``TimeoutError``/``OSError`` from a handler or a timer.
    This is the single choke point that normalizes those onto the
    :class:`~repro.errors.RuntimeBackendError`-adjacent network errors, so
    every layer above sees one failure vocabulary regardless of backend.
    ``repro`` exceptions (and anything else) pass through unchanged.
    """
    if isinstance(exc, ReproError):
        return exc
    if isinstance(exc, TimeoutError):
        normalized: BaseException = RequestTimeout(f"backend timeout: {exc!r}")
        normalized.__cause__ = exc
        return normalized
    if isinstance(exc, OSError):
        normalized = NodeUnreachable(f"backend transport failure: {exc!r}")
        normalized.__cause__ = exc
        return normalized
    return exc


class RpcAgent:
    """A network endpoint that can expose and invoke named methods."""

    def __init__(self, runtime: Runtime, network: Network, address: Address) -> None:
        self.runtime = runtime
        self.network = network
        self.address = address
        self._handlers: Dict[str, Handler] = {}
        self._pending: Dict[int, Future] = {}
        self._timers: Dict[int, Event] = {}
        self._next_request_id = 1
        self._online = False
        network.register(address, self)
        self._online = True

    # -- lifecycle -----------------------------------------------------------

    @property
    def sim(self) -> Runtime:
        """Backward-compatible alias for :attr:`runtime`."""
        return self.runtime

    @property
    def online(self) -> bool:
        """``True`` while the agent is registered with the network."""
        return self._online

    def go_offline(self, *, crash: bool = False) -> None:
        """Leave the network (gracefully, or abruptly when ``crash=True``).

        Pending outgoing requests are failed immediately with
        :class:`~repro.errors.NodeUnreachable` so caller processes do not
        hang until their timeouts when their own peer disappears.
        """
        if not self._online:
            return
        self._online = False
        if crash:
            self.network.crash(self.address)
        else:
            self.network.unregister(self.address)
        pending = list(self._pending.values())
        self._pending.clear()
        timers = list(self._timers.values())
        self._timers.clear()
        for timer in timers:
            timer.cancel()
        for future in pending:
            if not future.triggered:
                future.fail(NodeUnreachable(f"{self.address} went offline"))

    def go_online(self) -> None:
        """(Re-)register with the network, e.g. after a simulated restart."""
        if self._online:
            return
        self.network.register(self.address, self)
        self._online = True

    # -- handler registration -------------------------------------------------

    def expose(self, name: str, handler: Handler) -> None:
        """Register ``handler`` under ``name`` for incoming requests."""
        if not callable(handler):
            raise TypeError(f"handler for {name!r} is not callable")
        self._handlers[name] = handler

    def expose_object(self, obj: Any, prefix: str = "") -> None:
        """Expose every public ``rpc_``-prefixed method of ``obj``.

        A method named ``rpc_find_successor`` becomes callable remotely as
        ``find_successor`` (optionally prefixed).
        """
        for attribute_name in dir(obj):
            if not attribute_name.startswith("rpc_"):
                continue
            handler = getattr(obj, attribute_name)
            if callable(handler):
                self.expose(prefix + attribute_name[len("rpc_"):], handler)

    def handlers(self) -> list[str]:
        """Names of all exposed methods."""
        return sorted(self._handlers)

    # -- outgoing calls ---------------------------------------------------------

    def _allocate_request_id(self) -> int:
        """The next free correlation id, wrapping safely at the wire bound.

        A long-lived agent (the cluster mode runs for days) must not grow
        its ids without limit, and after wrapping it must not reuse an id
        whose request is still pending — a stale response would settle the
        wrong future.
        """
        candidate = self._next_request_id
        while candidate in self._pending:
            candidate += 1
            if candidate >= REQUEST_ID_LIMIT:
                candidate = 1
        self._next_request_id = candidate + 1
        if self._next_request_id >= REQUEST_ID_LIMIT:
            self._next_request_id = 1
        return candidate

    def call(
        self,
        destination: Address,
        method: str,
        timeout: Optional[float] = None,
        **arguments: Any,
    ) -> Future:
        """Invoke ``method`` on the peer at ``destination``.

        Returns a :class:`~repro.sim.Future` that succeeds with the remote
        return value, or fails with the remote exception, a
        :class:`~repro.errors.RequestTimeout` or
        :class:`~repro.errors.NodeUnreachable`.
        """
        future = self.runtime.future()
        if not self._online:
            future.fail(NodeUnreachable(f"{self.address} is offline"))
            return future

        request_id = self._allocate_request_id()
        # ``arguments`` is this call's own kwargs dict — nothing else can
        # alias it, so it rides in the message as-is (delivery severs
        # aliasing for the receiver; see Network._deliver).
        message = Message(
            source=self.address,
            destination=destination,
            kind=MessageKind.REQUEST,
            method=method,
            payload=arguments,
            request_id=request_id,
            sent_at=self.runtime.now,
        )
        self._pending[request_id] = future
        self.network.send(message)

        effective_timeout = timeout if timeout is not None else self.network.default_timeout
        timeout_event = self.runtime.timeout(effective_timeout)
        self._timers[request_id] = timeout_event

        def on_timeout(_event: Any) -> None:
            self._timers.pop(request_id, None)
            pending = self._pending.pop(request_id, None)
            if pending is not None and not pending.triggered:
                pending.fail(
                    RequestTimeout(
                        f"{method} to {destination} timed out after {effective_timeout}s"
                    )
                )

        timeout_event.callbacks.append(on_timeout)  # fresh event: append directly
        return future

    def request(
        self,
        destination: Address,
        method: str,
        timeout: Optional[float] = None,
        retries: int = 0,
        retry_delay: float = 0.0,
        **arguments: Any,
    ):
        """Generator helper adding retries on timeout; use with ``yield from``.

        Example (inside a simulation process)::

            successor = yield from agent.request(peer, "find_successor", ident=42,
                                                 retries=2)
        """
        attempt = 0
        while True:
            try:
                result = yield self.call(destination, method, timeout=timeout, **arguments)
                return result
            except RequestTimeout:
                attempt += 1
                if attempt > retries:
                    raise
                if retry_delay > 0:
                    yield self.runtime.timeout(retry_delay)

    def notify(self, destination: Address, method: str, **arguments: Any) -> None:
        """Send a one-way message (no response expected)."""
        if not self._online:
            return
        message = Message(
            source=self.address,
            destination=destination,
            kind=MessageKind.ONEWAY,
            method=method,
            payload=arguments,
            request_id=0,
            sent_at=self.runtime.now,
        )
        self.network.send(message)

    # -- incoming messages -------------------------------------------------------

    def deliver(self, message: Message) -> None:
        """Entry point called by the network when a message arrives."""
        if not self._online:
            return
        if message.kind is MessageKind.RESPONSE:
            self._handle_response(message)
        elif message.kind is MessageKind.REQUEST:
            self._handle_request(message)
        else:
            self._handle_oneway(message)

    def _handle_response(self, message: Message) -> None:
        future = self._pending.pop(message.request_id, None)
        timer = self._timers.pop(message.request_id, None)
        if timer is not None:
            # The request settled: retract its watchdog instead of leaving a
            # dead timer in the scheduler until it expires (tombstoned; the
            # kernel compacts them — see repro.sim.scheduler).
            timer.cancel()
        if future is None or future.triggered:
            return  # response arrived after the timeout already fired
        if message.is_error:
            future.fail(self._error_from_payload(message.payload))
        else:
            future.succeed(message.payload)

    @staticmethod
    def _error_from_payload(payload: Any) -> BaseException:
        """The exception an error response describes.

        Error responses carry :class:`~repro.net.codec.ErrorEnvelope`
        payloads (typed code + args), reconstructed here so callers catch
        the same exception classes they always did — never the responder's
        live exception object.  A live exception (a hand-built response
        from a test harness) and anything unrecognized degrade gracefully.
        """
        if isinstance(payload, ErrorEnvelope):
            return exception_from_envelope(payload)
        if isinstance(payload, BaseException):
            return normalize_backend_error(payload)
        return NetworkError(f"error response with malformed payload: {payload!r}")

    def _handle_request(self, message: Message) -> None:
        handler = self._handlers.get(message.method)
        if handler is None:
            self._respond(message, UnknownRpcMethod(message.method), is_error=True)
            return
        try:
            outcome = handler(**(message.payload or {}))
        except Exception as exc:  # noqa: BLE001 - forwarded to the caller
            self._respond(message, normalize_backend_error(exc), is_error=True)
            return
        if inspect.isgenerator(outcome):
            process = self.runtime.process(outcome, name=f"{self.address}:{message.method}")
            process.add_callback(lambda event: self._respond_from_event(message, event))
        else:
            self._respond(message, outcome)

    def _handle_oneway(self, message: Message) -> None:
        handler = self._handlers.get(message.method)
        if handler is None:
            return
        try:
            outcome = handler(**(message.payload or {}))
        except Exception:  # noqa: BLE001 - one-way failures are dropped
            return
        if inspect.isgenerator(outcome):
            self.runtime.process(outcome, name=f"{self.address}:{message.method}")

    def _respond_from_event(self, request: Message, event: Any) -> None:
        if event.ok:
            self._respond(request, event.value)
        else:
            self._respond(request, normalize_backend_error(event.value), is_error=True)

    def _respond(self, request: Message, payload: Any, *, is_error: bool = False) -> None:
        if not self._online:
            return
        if is_error and isinstance(payload, BaseException):
            # Exceptions never cross the wire as live objects: flatten to a
            # typed envelope here, reconstructed in _error_from_payload.
            payload = envelope_from_exception(payload)
        response = request.reply(payload, is_error=is_error, sent_at=self.runtime.now)
        self.network.send(response)
