"""Uniform DHT client interface.

The timestamping and logging services of P2P-LTR only need four operations
from the DHT: ``put``, ``get``, ``remove`` and ``lookup`` (find the peer
responsible for a key).  This module defines that contract so the services
can run either against the full Chord ring (production path, used by all
experiments) or against a trivial in-process table (used by the centralized
baseline and by fast unit tests of client-side logic).

All operations are *simulation processes* (generator functions used with
``yield from``) because the Chord-backed implementation needs to perform
network round trips.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Optional, Sequence

from ..errors import PLACEMENT_FAILURES, KeyNotFound

#: One item of a batched store: ``(key, value, key_id)`` where ``key_id`` may
#: be ``None`` to let the implementation hash ``key`` itself.
PutItem = tuple[str, Any, Optional[int]]

#: One item of a batched fetch: ``(key, key_id)`` where ``key_id`` may be
#: ``None`` to let the implementation hash ``key`` itself.
GetItem = tuple[str, Optional[int]]


class DhtClient(ABC):
    """Client-side view of a distributed hash table."""

    @abstractmethod
    def put(self, key: str, value: Any, *, key_id: Optional[int] = None):
        """Store ``value`` under ``key`` (process; returns placement info)."""

    def put_many(self, items: Sequence[PutItem]):
        """Store several items in one batched operation (process).

        Returns ``{"stored": [bool per item], "owners": int, "hops": int}``.
        The default implementation simply loops over :meth:`put` (one routed
        write per item); implementations backed by a real overlay override it
        to group items by responsible peer so a batch costs one replicated
        write per owner (the batched commit pipeline relies on this).
        """
        stored: list[bool] = []
        owners: set[Any] = set()
        hops = 0
        for key, value, key_id in items:
            try:
                answer = yield from self.put(key, value, key_id=key_id)
            except PLACEMENT_FAILURES:
                stored.append(False)
                continue
            stored.append(True)
            owners.add(answer.get("owner"))
            hops += answer.get("hops", 0)
        return {"stored": stored, "owners": len(owners), "hops": hops}

    @abstractmethod
    def get(self, key: str, *, key_id: Optional[int] = None):
        """Fetch the value stored under ``key`` (process; raises KeyNotFound)."""

    def get_many(self, items: Sequence[GetItem]):
        """Fetch several items in one batched operation (process).

        Returns ``{"values": [value-or-None per item], "owners": int,
        "hops": int}`` — a missing or unreachable item yields ``None`` in
        place, never an exception, so callers can fall back per item.  The
        default implementation loops over :meth:`get` (one routed read per
        item); implementations backed by a real overlay override it to
        group items by responsible peer so a range read costs one RPC per
        owner (the checkpointed retrieval fast path relies on this).
        """
        values: list[Any] = []
        owners: set[Any] = set()
        hops = 0
        for key, key_id in items:
            try:
                answer = yield from self.get(key, key_id=key_id)
            except (KeyNotFound, *PLACEMENT_FAILURES):
                values.append(None)
                continue
            values.append(answer["value"])
            owners.add(answer.get("owner"))
            hops += answer.get("hops", 0)
        return {"values": values, "owners": len(owners), "hops": hops}

    @abstractmethod
    def remove(self, key: str, *, key_id: Optional[int] = None):
        """Delete ``key`` (process; returns whether it existed)."""

    @abstractmethod
    def lookup(self, key: str, *, key_id: Optional[int] = None):
        """Locate the peer responsible for ``key`` (process; returns a descriptor)."""

    @abstractmethod
    def call_owner(self, routing_key: str, method: str, *, key_id: Optional[int] = None,
                   **arguments: Any):
        """Invoke an RPC ``method`` on the peer responsible for ``routing_key`` (process).

        The first parameter is only used for routing; the arguments forwarded
        to the remote handler are the keyword ``arguments`` (which may
        therefore freely include a ``key`` argument of their own).
        """
