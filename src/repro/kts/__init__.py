"""Key-based Timestamp Service (KTS).

Reproduction of the timestamping substrate P2P-LTR builds on (Akbarinia et
al., "Data Currency in Replicated DHTs", SIGMOD 2007 — ref [7] of the
report): for every key, the DHT node responsible for ``ht(key)`` generates
monotonically increasing, gap-free integer timestamps through ``gen_ts`` and
exposes the latest one through ``last_ts``.

* :class:`TimestampAuthority` — the per-node service holding and advancing
  counters (the Master-key peer role).
* :class:`KtsClient` — the client-side API any peer uses to request
  timestamps for a document key.
"""

from .authority import COUNTER_PREFIX, TimestampAuthority
from .client import KtsClient

__all__ = ["COUNTER_PREFIX", "KtsClient", "TimestampAuthority"]
