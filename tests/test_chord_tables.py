"""Unit tests for finger tables, successor lists and node storage."""

import pytest

from repro.chord import FingerTable, NodeRef, NodeStorage, SuccessorList
from repro.chord.storage import StoredItem
from repro.net import Address


def ref(name: str, node_id: int) -> NodeRef:
    return NodeRef(node_id, Address(name))


# ---------------------------------------------------------------------------
# FingerTable
# ---------------------------------------------------------------------------


def test_finger_table_starts_empty():
    table = FingerTable(node_id=10, bits=8)
    assert len(table) == 8
    assert all(entry is None for entry in table)
    assert table.known_nodes() == []


def test_finger_table_rejects_invalid_bits():
    with pytest.raises(ValueError):
        FingerTable(0, 0)


def test_finger_start_progression():
    table = FingerTable(node_id=10, bits=8)
    assert table.start(0) == 11
    assert table.start(3) == 18
    assert table.start(7) == (10 + 128) % 256


def test_finger_update_and_bounds():
    table = FingerTable(node_id=10, bits=8)
    node = ref("a", 50)
    table.update(2, node)
    assert table.get(2) == node
    with pytest.raises(ValueError):
        table.update(8, node)


def test_closest_preceding_picks_farthest_qualifying_finger():
    table = FingerTable(node_id=10, bits=8)
    table.update(0, ref("near", 12))
    table.update(5, ref("mid", 60))
    table.update(7, ref("far", 200))
    # target 100: far (200) is not in (10, 100); mid (60) is
    assert table.closest_preceding(100).node_id == 60
    # target 250: far (200) is in (10, 250)
    assert table.closest_preceding(250).node_id == 200


def test_closest_preceding_respects_exclusions():
    table = FingerTable(node_id=10, bits=8)
    mid = ref("mid", 60)
    near = ref("near", 12)
    table.update(5, mid)
    table.update(0, near)
    assert table.closest_preceding(100) == mid
    assert table.closest_preceding(100, exclude={mid}) == near


def test_remove_node_clears_all_matching_entries():
    table = FingerTable(node_id=10, bits=8)
    node = ref("a", 50)
    table.update(1, node)
    table.update(4, node)
    assert table.remove_node(node) == 2
    assert table.get(1) is None and table.get(4) is None


def test_fill_with_and_known_nodes_dedup():
    table = FingerTable(node_id=10, bits=8)
    node = ref("a", 50)
    table.fill_with(node)
    assert table.known_nodes() == [node]


# ---------------------------------------------------------------------------
# SuccessorList
# ---------------------------------------------------------------------------


def test_successor_list_requires_capacity():
    with pytest.raises(ValueError):
        SuccessorList(owner_id=1, capacity=0)


def test_successor_list_replace_dedup_and_trim():
    successors = SuccessorList(owner_id=1, capacity=2)
    a, b, c = ref("a", 10), ref("b", 20), ref("c", 30)
    successors.replace([a, a, b, c])
    assert successors.entries() == [a, b]
    assert successors.head == a
    assert successors.second() == b
    assert len(successors) == 2
    assert a in successors


def test_successor_list_adopt_excludes_self_and_duplicate_head():
    successors = SuccessorList(owner_id=1, capacity=3)
    me = ref("me", 1)
    succ, other = ref("s", 10), ref("o", 20)
    successors.adopt(succ, [succ, me, other])
    assert successors.entries() == [succ, other]


def test_successor_list_remove_and_promote():
    successors = SuccessorList(owner_id=1, capacity=3)
    a, b = ref("a", 10), ref("b", 20)
    successors.replace([a, b])
    assert successors.promote_next() == b
    assert successors.entries() == [b]
    successors.remove(b)
    assert successors.head is None
    assert successors.promote_next() is None


# ---------------------------------------------------------------------------
# NodeStorage
# ---------------------------------------------------------------------------


def test_storage_put_get_remove_roundtrip():
    storage = NodeStorage(bits=16)
    storage.put("k1", "v1", now=1.0)
    assert "k1" in storage
    assert storage.value("k1") == "v1"
    assert storage.get("k1").version == 1
    assert storage.remove("k1")
    assert not storage.remove("k1")
    assert storage.value("k1", default="missing") == "missing"


def test_storage_versions_increment_on_overwrite():
    storage = NodeStorage(bits=16)
    storage.put("k", 1)
    storage.put("k", 2)
    assert storage.get("k").version == 2
    assert storage.value("k") == 2


def test_storage_update_read_modify_write():
    storage = NodeStorage(bits=16)
    storage.update("counter", lambda current: (current or 0) + 1, default=0)
    storage.update("counter", lambda current: current + 1)
    assert storage.value("counter") == 2


def test_storage_owned_vs_replica_classification():
    storage = NodeStorage(bits=16)
    storage.put("owned", 1)
    storage.put("replica", 2, is_replica=True)
    assert [item.key for item in storage.owned_items()] == ["owned"]
    assert [item.key for item in storage.replica_items()] == ["replica"]
    assert len(storage) == 2
    assert sorted(storage.keys()) == ["owned", "replica"]


def test_storage_promote_replicas():
    storage = NodeStorage(bits=16)
    storage.put("a", 1, is_replica=True)
    storage.put("b", 2, is_replica=True)
    promoted = storage.promote_replicas(lambda item: item.key == "a")
    assert [item.key for item in promoted] == ["a"]
    assert not storage.get("a").is_replica
    assert storage.get("b").is_replica


def test_storage_interval_extraction_with_explicit_ids():
    storage = NodeStorage(bits=8)
    storage.put("low", "L", key_id=10)
    storage.put("mid", "M", key_id=100)
    storage.put("high", "H", key_id=200)
    moving = storage.extract_interval(50, 150)
    assert [item.key for item in moving] == ["mid"]
    assert "mid" not in storage
    # wrap-around interval (150, 50]
    moving = storage.extract_interval(150, 50)
    assert sorted(item.key for item in moving) == ["high", "low"]


def test_storage_interval_excludes_replicas_by_default():
    storage = NodeStorage(bits=8)
    storage.put("a", 1, key_id=10, is_replica=True)
    assert storage.items_in_interval(0, 100) == []
    assert len(storage.items_in_interval(0, 100, include_replicas=True)) == 1


def test_storage_absorb_is_idempotent_and_version_aware():
    source = NodeStorage(bits=8)
    item = source.put("k", "new-value", key_id=5)
    destination = NodeStorage(bits=8)
    destination.put("k", "old-value", key_id=5)  # version 1, same as incoming
    absorbed = destination.absorb([item])
    assert absorbed == 0  # same version: keep existing
    newer = StoredItem(key="k", value="newer", key_id=5, version=7)
    assert destination.absorb([newer]) == 1
    assert destination.value("k") == "newer"
    # replaying the same transfer changes nothing
    assert destination.absorb([newer]) == 0


def test_storage_absorb_promotes_existing_replica_when_ownership_arrives():
    destination = NodeStorage(bits=8)
    destination.put("k", "value", key_id=5, is_replica=True)
    same_version = StoredItem(key="k", value="value", key_id=5, version=1)
    destination.absorb([same_version], as_replica=False)
    assert not destination.get("k").is_replica


def test_storage_snapshot():
    storage = NodeStorage(bits=8)
    storage.put("a", 1)
    storage.put("b", 2)
    assert storage.snapshot() == {"a": 1, "b": 2}
