"""Baseline showdown: P2P-LTR vs. a centralized reconciler vs. last-writer-wins.

Runs the same concurrent-editing burst against the three systems and prints
what the paper's introduction argues qualitatively: a centralized reconciler
is a single point of failure, last-writer-wins loses concurrent
contributions, and P2P-LTR avoids both problems.

Run with ``python examples/baseline_showdown.py``.
"""

from repro import LtrSystem
from repro.baselines import CentralSystem, LwwSystem
from repro.errors import MasterUnavailable
from repro.net import ConstantLatency

UPDATERS = 5
KEY = "xwiki:DesignNotes"


def run_p2p_ltr() -> None:
    system = LtrSystem(seed=11, latency=ConstantLatency(0.005))
    system.bootstrap(12)
    results = system.run_concurrent_commits(
        [(f"peer-{index}", KEY, f"idea from peer-{index}") for index in range(UPDATERS)]
    )
    report = system.check_consistency(KEY)
    print("P2P-LTR:")
    print(f"  validated revisions : {sorted(result.ts for result in results)}")
    print(f"  contributions kept  : {len(report.canonical_lines)} / {UPDATERS}")
    master = system.master_of(KEY)
    system.crash(master)
    survivor = system.peer_names()[0]
    post = system.edit_and_commit(survivor, KEY, "still editable after the master crashed")
    print(f"  after master crash  : next update validated with ts={post.ts} (no SPOF)")


def run_central() -> None:
    system = CentralSystem(peer_count=UPDATERS, seed=11, latency=ConstantLatency(0.005))
    results = system.run_concurrent_commits(
        [(f"peer-{index}", KEY, f"idea from peer-{index}") for index in range(UPDATERS)]
    )
    print("Centralized reconciler:")
    print(f"  validated revisions : {sorted(result['ts'] for result in results)}")
    system.crash_reconciler()
    try:
        system.edit_and_commit("peer-0", KEY, "one more idea")
        outcome = "still available (unexpected)"
    except MasterUnavailable:
        outcome = "service unavailable — single point of failure"
    print(f"  after reconciler crash: {outcome}")


def run_lww() -> None:
    system = LwwSystem.build(peer_count=UPDATERS, seed=11, latency=ConstantLatency(0.005))
    for index in range(UPDATERS):
        system.write(f"peer-{index}", KEY, f"idea from peer-{index}")
    system.settle(2.0)
    print("Last-writer-wins:")
    print(f"  converged           : {system.converged(KEY)}")
    print(f"  surviving content   : {system.surviving_content(KEY)!r}")
    print(f"  lost contributions  : {system.lost_updates(KEY)} / {UPDATERS}")


def main() -> None:
    run_p2p_ltr()
    print()
    run_central()
    print()
    run_lww()


if __name__ == "__main__":
    main()
