"""The ``copy_payload`` fast path: equivalence and mutation-severing.

The simulated network's default wire fidelity applies a structural copy to
every delivered payload (:func:`repro.net.codec.copy_payload`).  For speed
it takes shortcuts — immutable leaves (atomics plus registered wire types
declared immutable) are shared by reference, and immutable containers whose
items all copied to themselves are shared too.  Those shortcuts are only
legal while two properties hold, and this suite pins both for **every
registered wire type**:

* *equivalence*: the fast copy is observationally identical to the full
  serialize/deserialize cycle (``decode(encode(x))``), which is what a real
  wire would do;
* *mutation severing*: after a copy, mutating any mutable part of the
  original is invisible through the copy (and vice versa) — receivers can
  never alias a sender's state.

A completeness check walks the live registry so a layer cannot register a
new wire type without adding coverage here.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chord import NodeRef
from repro.core.batch import CommitBatch
from repro.net import Address, ErrorEnvelope, Message, MessageKind
from repro.net.codec import (
    _IMMUTABLE_LEAVES,  # noqa: PLC2701 - the fast path under test
    copy_message,
    copy_payload,
    decode,
    encode,
    registered_wire_tags,
)
from repro.ot import DeleteLine, InsertLine, NoOp, Patch
from repro.p2plog import Checkpoint, LogEntry
from repro.storage import StoredItem

# Deterministic in CI (same convention as tests/test_codec.py).
SEEDED = settings(max_examples=60, derandomize=True, deadline=None)

names = st.text(
    alphabet=st.characters(codec="utf-8", exclude_categories=("Cs",)),
    min_size=0, max_size=12,
)
ring_ids = st.integers(min_value=0, max_value=2**160 - 1)
timestamps = st.integers(min_value=0, max_value=2**40)
floats = st.floats(allow_nan=False, allow_infinity=False, width=64)
scalars = st.one_of(st.none(), st.booleans(), names, floats, timestamps)

addresses = st.builds(Address, name=names.filter(bool), site=names.filter(bool))
noderefs = st.builds(NodeRef, node_id=ring_ids, address=addresses)
operations = st.one_of(
    st.builds(InsertLine, position=st.integers(0, 500), line=names, origin=names),
    st.builds(DeleteLine, position=st.integers(0, 500), line=names, origin=names),
    st.builds(NoOp, origin=names),
)
patches = st.builds(
    Patch,
    operations=st.tuples() | st.lists(operations, max_size=6).map(tuple),
    base_ts=timestamps,
    author=names,
    comment=names,
)
log_entries = st.builds(
    LogEntry,
    document_key=names.filter(bool),
    ts=st.integers(min_value=1, max_value=2**40),
    patch=patches,
    author=names,
    published_at=floats,
    metadata=st.dictionaries(names, timestamps, max_size=3),
)
checkpoints = st.builds(
    Checkpoint,
    document_key=names.filter(bool),
    ts=st.integers(min_value=1, max_value=2**40),
    lines=st.lists(names, max_size=8).map(tuple),
    created_at=floats,
    author=names,
    metadata=st.dictionaries(names, timestamps, max_size=3),
)
stored_items = st.builds(
    StoredItem,
    key=names.filter(bool),
    value=st.one_of(names, timestamps, patches, log_entries,
                    st.dictionaries(names, timestamps, max_size=3),
                    st.lists(timestamps, max_size=3)),
    key_id=st.none() | ring_ids,
    is_replica=st.booleans(),
    version=st.integers(min_value=0, max_value=2**31),
    stored_at=floats,
)
commit_batches = st.builds(
    CommitBatch,
    key=names.filter(bool),
    opened_at=floats,
    max_edits=st.integers(min_value=1, max_value=64),
    deadline=st.floats(min_value=0.0, max_value=60.0, allow_nan=False),
    patches=st.lists(patches, max_size=4),
)
error_envelopes = st.builds(
    ErrorEnvelope,
    code=names.filter(bool),
    message=names,
    args=st.lists(scalars, max_size=3).map(tuple),
    debug=names,
)
payload_trees = st.recursive(
    st.one_of(scalars, addresses, noderefs, operations, patches, log_entries),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(names, children, max_size=4),
        st.sets(timestamps, max_size=4),
        st.frozensets(timestamps, max_size=4),
    ),
    max_leaves=8,
)
messages = st.builds(
    Message,
    source=addresses,
    destination=addresses,
    kind=st.sampled_from(list(MessageKind)),
    method=names,
    payload=payload_trees,
    request_id=st.integers(min_value=0, max_value=2**32 - 1),
    is_error=st.booleans(),
    sent_at=floats,
)

#: One instance strategy per registered wire tag.  The completeness test
#: below fails when a layer registers a tag with no strategy here.
TAG_STRATEGIES: dict[str, st.SearchStrategy] = {
    "addr": addresses,
    "checkpoint": checkpoints,
    "commit-batch": commit_batches,
    "error": error_envelopes,
    "kind": st.sampled_from(list(MessageKind)),
    "log-entry": log_entries,
    "msg": messages,
    "noderef": noderefs,
    "op-del": st.builds(DeleteLine, position=st.integers(0, 500), line=names,
                        origin=names),
    "op-ins": st.builds(InsertLine, position=st.integers(0, 500), line=names,
                        origin=names),
    "op-noop": st.builds(NoOp, origin=names),
    "patch": patches,
    "stored-item": stored_items,
}


def test_every_registered_wire_tag_has_a_strategy():
    missing = set(registered_wire_tags()) - set(TAG_STRATEGIES)
    assert not missing, (
        f"wire tags without fast-path coverage: {sorted(missing)} — "
        "add a strategy to TAG_STRATEGIES in tests/test_copy_fastpath.py"
    )


# ---------------------------------------------------------------------------
# Equivalence: fast copy == full serialize/deserialize, for every wire type
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("tag", sorted(TAG_STRATEGIES))
@SEEDED
@given(data=st.data())
def test_fast_copy_matches_codec_round_trip(tag, data):
    obj = data.draw(TAG_STRATEGIES[tag])
    copied = copy_payload(obj)
    restored = decode(encode(obj))
    assert type(copied) is type(obj)
    assert copied == obj
    assert copied == restored


@SEEDED
@given(payload_trees)
def test_fast_copy_matches_codec_round_trip_on_nested_trees(payload):
    assert copy_payload(payload) == decode(encode(payload))


@pytest.mark.parametrize("tag", sorted(TAG_STRATEGIES))
@SEEDED
@given(data=st.data())
def test_immutable_leaves_are_shared_by_reference(tag, data):
    # The fast path's whole point: a registered type declared immutable
    # (``register_wire_type(..., copy=None)``) crosses a simulated delivery
    # as the same object.  Types with a real copy hook must not.
    obj = data.draw(TAG_STRATEGIES[tag])
    if type(obj) in _IMMUTABLE_LEAVES:
        assert copy_payload(obj) is obj


# ---------------------------------------------------------------------------
# Mutation severing: no mutable state is shared between original and copy
# ---------------------------------------------------------------------------


def test_dict_payloads_are_rebuilt_and_severed():
    original = {"lines": ["a", "b"], "meta": {"ts": 1}}
    copied = copy_payload(original)
    assert copied == original
    assert copied is not original
    assert copied["lines"] is not original["lines"]
    original["lines"].append("c")
    original["meta"]["ts"] = 99
    assert copied == {"lines": ["a", "b"], "meta": {"ts": 1}}
    copied["lines"].append("z")
    assert original["lines"] == ["a", "b", "c"]


def test_log_entry_metadata_is_severed():
    entry = LogEntry(document_key="doc", ts=3,
                     patch=Patch(operations=(InsertLine(0, "x"),), base_ts=2,
                                 author="alice"),
                     author="alice", published_at=1.5, metadata={"site": 1})
    copied = copy_payload(entry)
    assert copied == entry
    assert copied.metadata is not entry.metadata
    entry.metadata["site"] = 99
    assert copied.metadata == {"site": 1}
    # The patch inside is an immutable leaf: shared, not rebuilt.
    assert copied.patch is entry.patch


def test_stored_item_with_mutable_value_is_severed():
    item = StoredItem("k", {"v": [1, 2]}, key_id=7, is_replica=False,
                      version=1, stored_at=0.5)
    copied = copy_payload(item)
    assert copied == item
    item.value["v"].append(3)
    assert copied.value == {"v": [1, 2]}


def test_commit_batch_patch_list_is_severed():
    patch = Patch(operations=(InsertLine(0, "x"),), base_ts=1, author="a")
    batch = CommitBatch(key="doc", opened_at=0.0, max_edits=4, deadline=10.0,
                        patches=[patch])
    copied = copy_payload(batch)
    assert copied == batch
    batch.patches.append(patch)
    assert len(copied.patches) == 1


def test_mutable_containers_are_always_rebuilt():
    for original in ({"a": 1}, [1, 2], {1, 2}):
        copied = copy_payload(original)
        assert copied == original
        assert copied is not original


def test_immutable_containers_of_leaves_are_shared():
    # A tuple/frozenset whose items all copy to themselves is itself shared:
    # neither container nor items can be mutated by the receiver.
    leaf_tuple = (1, "a", NoOp(origin="x"), None)
    assert copy_payload(leaf_tuple) is leaf_tuple
    leaf_frozen = frozenset({1, 2, 3})
    assert copy_payload(leaf_frozen) is leaf_frozen
    # One mutable item anywhere forces a rebuild of the container.
    mixed = (1, {"k": "v"})
    copied = copy_payload(mixed)
    assert copied is not mixed
    assert copied == mixed
    assert copied[1] is not mixed[1]


def test_message_with_immutable_payload_is_shared():
    immutable = Message(
        source=Address("a", "s1"), destination=Address("b", "s2"),
        kind=MessageKind.REQUEST, method="ping",
        payload=(1, "x"), request_id=1, sent_at=0.0,
    )
    assert copy_message(immutable) is immutable


def test_message_with_mutable_payload_is_severed():
    payload = {"key": "doc", "lines": ["a"]}
    message = Message(
        source=Address("a", "s1"), destination=Address("b", "s2"),
        kind=MessageKind.REQUEST, method="store",
        payload=payload, request_id=1, sent_at=0.0,
    )
    delivered = copy_message(message)
    assert delivered is not message
    assert delivered.payload == payload
    payload["lines"].append("b")
    assert delivered.payload["lines"] == ["a"]
