"""Configuration of the P2P-LTR protocol layer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError
from ..storage import BACKEND_NAMES


@dataclass(frozen=True)
class LtrConfig:
    """Tunable parameters of P2P-LTR.

    Attributes
    ----------
    log_replication_factor:
        ``n = |Hr|`` — how many independent Log-Peer placements each
        timestamped patch gets (paper Section 2).
    max_validation_attempts:
        Upper bound on the validate → retrieve → retry loop of the user
        peer.  The paper loops "until last-ts value is equal to ts value";
        the bound only exists to turn a livelock into a diagnosable error.
    validation_retries:
        How many times a single validation RPC is re-routed when the
        Master-key peer is unreachable (crash/churn window).
    validation_retry_delay:
        Delay between those re-routing attempts, in simulated seconds.  It
        should be of the order of the DHT stabilization interval so a
        retried request reaches the new Master-key peer.
    publish_before_ack:
        When ``True`` (paper behaviour) the Master-key peer replicates the
        patch in the P2P-Log before acknowledging the user peer.
    parallel_retrieval:
        When ``True``, user peers fetch all missing patches of a retrieval
        round concurrently instead of one timestamp at a time (the ablation
        discussed in ``DESIGN.md`` §6); the integration order is unchanged.
    batch_enabled:
        When ``True``, user peers may accumulate edits into a
        :class:`~repro.core.batch.CommitBatch` and commit the whole batch
        through one Master round-trip, one KTS range allocation and one
        grouped P2P-Log publish (the batched commit pipeline, ``DESIGN.md``
        §"Batched commit pipeline").  ``False`` (the default) keeps the
        paper's one-round-trip-per-edit path; ``UserPeer.stage`` refuses to
        run so the two modes cannot be mixed by accident.
    batch_max_edits:
        Size bound of a commit batch: ``stage`` marks the batch as full once
        it holds this many edits, at which point it must be flushed before
        more edits are staged.
    batch_deadline:
        Deadline bound, in simulated seconds: a non-empty batch older than
        this is reported as due by ``CommitBatch.due`` / flushed by
        ``LtrSystem.flush_due`` even when it is not full, so a trickle of
        edits is never parked indefinitely.
    checkpoint_enabled:
        When ``True``, the Master-key peer materializes a document snapshot
        every ``checkpoint_interval`` published timestamps and stores it
        replicated under the salted checkpoint hash family, and
        ``UserPeer.sync`` bootstraps cold catch-ups from the newest
        checkpoint instead of replaying the whole patch log (``DESIGN.md``
        §"Checkpointed retrieval").  ``False`` (the default) keeps the
        paper's full-replay retrieval procedure byte-identical.
    checkpoint_interval:
        How many published timestamps between two checkpoints of the same
        document.  Also the staleness threshold below which ``sync`` skips
        the checkpoint probe (replaying that short a suffix is cheaper).
    checkpoint_retention:
        How many checkpoints per document are retained; older ones are
        garbage-collected from the DHT when a new checkpoint slides them
        out of the window (the log's compaction story).
    grouped_fetch:
        When ``True``, range retrievals (sync catch-up and the behind path
        of commit/flush) go through the grouped ``fetch_span`` path: one
        ``fetch_many`` request per responsible Log-Peer instead of one
        routed fetch per timestamp.  ``False`` (the default) keeps the
        paper's per-timestamp retrieval loop.
    max_parallel_fetches:
        Upper bound on in-flight fetches of a ``parallel_retrieval`` range
        (the range is worked through in windows of this size), so a very
        long catch-up cannot flood the network.
    runtime_backend:
        Which execution runtime a :class:`~repro.core.LtrSystem` built from
        this config runs on when no explicit runtime is supplied:
        ``"sim"`` (the default — deterministic virtual clock, byte-identical
        seeded experiments) or ``"asyncio"`` (wall-clock timers, real
        in-process concurrency; see ``DESIGN.md`` §"Execution runtimes").
    storage_backend:
        Which persistence backend every peer's node storage uses:
        ``"memory"`` (the default — the historical volatile dict) or
        ``"sqlite"`` (one WAL database file per node; crashed peers can
        restart with ``recover=True`` and reload their data from disk).
        See ``DESIGN.md`` §"Durable storage".
    storage_dir:
        Directory holding the per-node database files of the ``"sqlite"``
        backend.  ``None`` (the default) lets :class:`~repro.core.LtrSystem`
        create a private temporary directory and remove it on
        :meth:`~repro.core.LtrSystem.shutdown`.
    auth_enabled:
        When ``True``, every commit carries a per-author HMAC over the
        canonical wire encoding of the patch tuple, the Master rejects
        unsigned or mis-signed submissions with
        :class:`~repro.errors.AuthenticationError`, signs the checkpoints
        it writes, and user peers verify signatures on every log entry and
        checkpoint they retrieve, skipping tampered replicas (``DESIGN.md``
        §"Adversarial model & authenticity").  ``False`` (the default)
        keeps the trusting paper protocol byte-identical.
    auth_secret:
        Shared secret from which the per-author keys are derived
        (HMAC-SHA256 of the author name under this secret).  Any holder of
        the secret can mint any author's key — the scheme authenticates
        *against outsiders and accidental corruption*, not against
        colluding insiders; see the threat-model table in ``DESIGN.md``.
    """

    log_replication_factor: int = 3
    max_validation_attempts: int = 64
    validation_retries: int = 8
    validation_retry_delay: float = 0.5
    publish_before_ack: bool = True
    parallel_retrieval: bool = False
    batch_enabled: bool = False
    batch_max_edits: int = 16
    batch_deadline: float = 0.25
    checkpoint_enabled: bool = False
    checkpoint_interval: int = 32
    checkpoint_retention: int = 2
    grouped_fetch: bool = False
    max_parallel_fetches: int = 16
    runtime_backend: str = "sim"
    storage_backend: str = "memory"
    storage_dir: Optional[str] = None
    auth_enabled: bool = False
    auth_secret: str = "p2p-ltr-dev-secret"

    def __post_init__(self) -> None:
        if self.auth_enabled and not self.auth_secret:
            raise ConfigurationError(
                "auth_enabled requires a non-empty auth_secret"
            )
        if self.runtime_backend not in ("sim", "asyncio"):
            raise ConfigurationError(
                f"runtime_backend must be 'sim' or 'asyncio', "
                f"got {self.runtime_backend!r}"
            )
        if self.storage_backend not in BACKEND_NAMES:
            raise ConfigurationError(
                f"storage_backend must be one of {BACKEND_NAMES}, "
                f"got {self.storage_backend!r}"
            )
        if self.log_replication_factor < 1:
            raise ConfigurationError(
                f"log_replication_factor must be >= 1, got {self.log_replication_factor}"
            )
        if self.max_validation_attempts < 1:
            raise ConfigurationError(
                f"max_validation_attempts must be >= 1, got {self.max_validation_attempts}"
            )
        if self.validation_retries < 0:
            raise ConfigurationError(
                f"validation_retries must be >= 0, got {self.validation_retries}"
            )
        if self.validation_retry_delay < 0:
            raise ConfigurationError(
                f"validation_retry_delay must be >= 0, got {self.validation_retry_delay}"
            )
        if self.batch_max_edits < 1:
            raise ConfigurationError(
                f"batch_max_edits must be >= 1, got {self.batch_max_edits}"
            )
        if self.batch_deadline < 0:
            raise ConfigurationError(
                f"batch_deadline must be >= 0, got {self.batch_deadline}"
            )
        if self.checkpoint_interval < 1:
            raise ConfigurationError(
                f"checkpoint_interval must be >= 1, got {self.checkpoint_interval}"
            )
        if self.checkpoint_retention < 1:
            raise ConfigurationError(
                f"checkpoint_retention must be >= 1, got {self.checkpoint_retention}"
            )
        if self.max_parallel_fetches < 1:
            raise ConfigurationError(
                f"max_parallel_fetches must be >= 1, got {self.max_parallel_fetches}"
            )
