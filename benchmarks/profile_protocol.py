#!/usr/bin/env python
"""Profile the P2P-LTR commit pipeline on a warm ring.

Answers "where does a commit's wall-clock go at 10^3+ peers?" — the
question behind the protocol-at-scale performance pass.  The harness
builds a warm ring (``bootstrap_warm``, the E18 starting point), drives
the commit pipeline (batched or unbatched) from one writer, and reports:

* a plain timing pass: wall-clock commits/sec, simulated time, message
  count, peak RSS — the number the >=2x acceptance bar is measured on;
* a profiled pass (fresh system, same seed) attributing cost to the
  protocol hot paths via :class:`repro.metrics.profiling.HotpathProfiler`:
  payload copies on delivery, Message/RPC churn, chord routing and
  maintenance, storage writes, and the simulation kernel.

Usage::

    PYTHONPATH=src python benchmarks/profile_protocol.py \
        --peers 1000 --edits 64 --batch 16 [--alloc] [--json OUT.json]

``--batch 1`` runs the unbatched pipeline (one Master round + one KTS
timestamp + one log publish per edit).  ``--no-profile`` skips the
attribution pass, ``--alloc`` adds tracemalloc allocation attribution to
it (slower; timing columns of an ``--alloc`` run are not comparable).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - direct invocation without PYTHONPATH
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import LtrConfig, LtrSystem
from repro.experiments.scenarios import (
    PROTOCOL_SCALE_KEY,
    PROTOCOL_SCALE_LINES,
    SCALE_CHORD_CONFIG,
    _peak_rss_mb,
    protocol_revision_text,
)
from repro.metrics.profiling import HotpathProfiler
from repro.net import ConstantLatency

DOCUMENT_KEY = PROTOCOL_SCALE_KEY

#: Lines rewritten per edit — the E20 workload's multi-line revisions
#: (see ``protocol_revision_text`` for the rationale).
DEFAULT_LINES = PROTOCOL_SCALE_LINES

#: The E20 scenario and this harness stage byte-identical revisions.
revision_text = protocol_revision_text


def build_system(peers: int, batch: int, seed: int) -> LtrSystem:
    """A warm ring of ``peers`` nodes with the commit pipeline configured."""
    if batch > 1:
        ltr_config = LtrConfig(
            batch_enabled=True, batch_max_edits=batch, parallel_retrieval=True
        )
    else:
        ltr_config = LtrConfig(parallel_retrieval=True)
    system = LtrSystem(
        ltr_config=ltr_config,
        chord_config=SCALE_CHORD_CONFIG,
        seed=seed,
        latency=ConstantLatency(0.003),
    )
    system.bootstrap(peers, warm=True)
    return system


def run_pipeline(
    system: LtrSystem, writer: str, edits: int, batch: int,
    lines: int = DEFAULT_LINES,
) -> int:
    """Drive ``edits`` edits through the commit pipeline; returns commits."""
    committed = 0
    if batch > 1:
        for index in range(edits):
            outcome = system.stage(
                writer, DOCUMENT_KEY, revision_text(index, lines),
                comment=f"edit-{index}",
            )
            if outcome is not None:
                committed += outcome.edits
        if edits % batch:
            outcome = system.flush(writer, DOCUMENT_KEY)
            if outcome is not None:
                committed += outcome.edits
    else:
        for index in range(edits):
            result = system.edit_and_commit(
                writer, DOCUMENT_KEY, revision_text(index, lines),
                comment=f"edit-{index}",
            )
            if result is not None:
                committed += 1
    return committed


def measure(peers: int, edits: int, batch: int, seed: int,
            lines: int = DEFAULT_LINES) -> dict:
    """The plain timing pass: no profiler in the loop."""
    system = build_system(peers, batch, seed)
    writer = system.peer_names()[0]
    sent_before = system.network.stats.sent
    sim_before = system.runtime.now
    started = time.perf_counter()
    committed = run_pipeline(system, writer, edits, batch, lines)
    wall = time.perf_counter() - started
    sim_elapsed = system.runtime.now - sim_before
    messages = system.network.stats.sent - sent_before
    system.shutdown()
    return {
        "peers": peers,
        "edits": edits,
        "batch": batch,
        "lines": lines,
        "seed": seed,
        "committed": committed,
        "wall_s": round(wall, 3),
        "commits_per_s_wall": round(committed / wall, 1) if wall > 0 else 0.0,
        "sim_elapsed_s": round(sim_elapsed, 3),
        "messages": messages,
        "peak_rss_mb": _peak_rss_mb(),
    }


def profile(peers: int, edits: int, batch: int, seed: int,
            allocations: bool, lines: int = DEFAULT_LINES) -> tuple[dict, str]:
    """The attribution pass: same workload on a fresh system, profiled."""
    system = build_system(peers, batch, seed)
    writer = system.peer_names()[0]
    profiler = HotpathProfiler(allocations=allocations)
    with profiler:
        committed = run_pipeline(system, writer, edits, batch, lines)
    system.shutdown()
    report = profiler.report()
    return report.as_dict(), report.render(per=max(committed, 1))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--peers", type=int, default=1000)
    parser.add_argument("--edits", type=int, default=64)
    parser.add_argument("--batch", type=int, default=16,
                        help="batch size; 1 = unbatched pipeline")
    parser.add_argument("--seed", type=int, default=20)
    parser.add_argument("--lines", type=int, default=DEFAULT_LINES,
                        help="lines rewritten per edit (payload weight)")
    parser.add_argument("--no-profile", action="store_true",
                        help="timing pass only, skip the cProfile attribution")
    parser.add_argument("--alloc", action="store_true",
                        help="add tracemalloc allocation attribution (slow)")
    parser.add_argument("--json", type=Path, default=None,
                        help="write timing + attribution JSON to this path")
    args = parser.parse_args(argv)

    timing = measure(args.peers, args.edits, args.batch, args.seed, args.lines)
    print(
        f"peers={timing['peers']} batch={timing['batch']} "
        f"lines={timing['lines']} "
        f"edits={timing['edits']} committed={timing['committed']}: "
        f"wall {timing['wall_s']}s -> {timing['commits_per_s_wall']} commits/s, "
        f"sim {timing['sim_elapsed_s']}s, {timing['messages']} msgs, "
        f"peak RSS {timing['peak_rss_mb']} MiB"
    )

    attribution = None
    if not args.no_profile:
        attribution, rendered = profile(
            args.peers, args.edits, args.batch, args.seed, args.alloc, args.lines
        )
        print()
        print(rendered)

    if args.json is not None:
        payload = {"timing": timing, "attribution": attribution}
        args.json.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
