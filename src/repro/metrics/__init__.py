"""Measurement helpers: statistics, collectors and result tables."""

from .collector import MetricsCollector
from .stats import Summary, jains_fairness, percentile, summarize
from .tables import ResultTable, render_tables

__all__ = [
    "MetricsCollector",
    "ResultTable",
    "Summary",
    "jains_fairness",
    "percentile",
    "render_tables",
    "summarize",
]
