"""Measurement helpers: statistics, collectors, profiling and result tables."""

from .collector import MetricsCollector
from .profiling import HOTPATH_CATEGORIES, HotpathProfiler, HotpathReport
from .recovery import ProbeOutcome, RecoveryTracker
from .stats import Summary, jains_fairness, percentile, summarize
from .tables import ResultTable, render_tables

__all__ = [
    "HOTPATH_CATEGORIES",
    "HotpathProfiler",
    "HotpathReport",
    "MetricsCollector",
    "ProbeOutcome",
    "RecoveryTracker",
    "ResultTable",
    "Summary",
    "jains_fairness",
    "percentile",
    "render_tables",
    "summarize",
]
