"""Microbenchmark: calendar-queue scheduler vs. the historical flat heap.

Measures raw kernel event throughput on the workload that motivated the
calendar queue — an RPC-heavy simulation where every request schedules a
timeout timer and almost every timer is cancelled before it fires (the
response arrived first).  The flat heap pays two heap operations *plus a
full dispatch* for every timer whether or not its outcome still matters;
the calendar queue takes an O(1) append on schedule and drops cancelled
entries before they are ever sorted.

The legacy scheduler is embedded below (verbatim event loop of the
pre-calendar-queue kernel, minus the process/RNG plumbing the benchmark
does not touch) so the comparison keeps working as the kernel evolves.

Usage::

    PYTHONPATH=src python benchmarks/bench_sim_kernel.py
    PYTHONPATH=src python benchmarks/bench_sim_kernel.py --timers 20000 --json out.json

Exit status is non-zero if the calendar queue fails the ``--min-speedup``
bar on the cancel-heavy workload (the CI scale-smoke job relies on this).
"""

from __future__ import annotations

import argparse
import heapq
import json
import sys
import time
from itertools import count
from pathlib import Path

from repro.sim.events import Event
from repro.sim.primitives import EventPrimitivesMixin
from repro.sim.scheduler import Simulator


class LegacyHeapSimulator(EventPrimitivesMixin):
    """The seed kernel's scheduler: one flat ``heapq`` of (time, seq, event).

    Cancellation did not exist; a timer whose outcome became irrelevant
    stayed in the heap and was dispatched into a no-op callback when its
    time came.  The benchmark models that faithfully: "cancelling" on this
    scheduler just clears the callback list.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, Event]] = []
        self._sequence = count()
        self._processed_events = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def processed_events(self) -> int:
        return self._processed_events

    def schedule(self, event: Event, delay: float = 0.0) -> None:
        if event._scheduled:
            return
        event._scheduled = True
        heapq.heappush(self._queue, (self._now + delay, next(self._sequence), event))

    def step(self) -> None:
        when, _seq, event = heapq.heappop(self._queue)
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        self._processed_events += 1
        if callbacks:
            for callback in callbacks:
                callback(event)

    def run(self, until: float | None = None) -> None:
        limit = float("inf") if until is None else float(until)
        while self._queue and self._queue[0][0] <= limit:
            self.step()
        if until is not None:
            self._now = max(self._now, limit)

    def cancel(self, event: Event) -> None:
        """Best the flat heap can do: forget the callbacks, keep the entry."""
        event.callbacks = None


def _cancel_on(sim, event: Event) -> None:
    """Cancel ``event`` through whichever mechanism the scheduler offers."""
    if isinstance(sim, LegacyHeapSimulator):
        sim.cancel(event)
    else:
        event.cancel()


def watchdog_reset_storm(sim, *, concurrent: int, resets: int,
                         timeout: float = 300.0, tick: float = 0.01) -> float:
    """The cancel-heavy workload: ``concurrent`` watchdogs reset ``resets`` times.

    Models the dominant timer pattern of an RPC-heavy simulation on a
    healthy network (``repro.net.rpc``): every in-flight request keeps a
    long timeout watchdog that is retracted and re-armed as traffic flows,
    so almost every scheduled timer is dead long before its time comes.
    The legacy heap keeps all ``concurrent * resets`` dead entries and
    eventually pays a pop *and a full dispatch* for each; the calendar
    queue compacts tombstones away and never sorts or dispatches them.

    Returns ``(arm_s, drain_s)`` wall-clock seconds: the *arm* phase
    creates, cancels and re-arms the timers (timer-object construction
    dominates and is common to both schedulers; the calendar queue also
    pays its tombstone compactions here), the *drain* phase runs the clock
    past the horizon so the surviving timers fire — this is where the two
    schedulers differ asymptotically, and the phase the speedup gate
    checks.
    """
    arm_started = time.perf_counter()
    noop = lambda _event: None  # noqa: E731 - benchmark callback
    watchdogs = []
    for _ in range(concurrent):
        timer = sim.timeout(timeout)
        timer.add_callback(noop)
        watchdogs.append(timer)
    for _ in range(resets):
        for index in range(concurrent):
            _cancel_on(sim, watchdogs[index])
            timer = sim.timeout(timeout)
            timer.add_callback(noop)
            watchdogs[index] = timer
        sim.run(until=sim.now + tick)
    arm_s = time.perf_counter() - arm_started
    # Run the clock out: the survivors fire, the dead entries are paid for
    # (dispatched by the heap, dropped in batch by the calendar queue).
    drain_started = time.perf_counter()
    sim.run(until=sim.now + timeout + 1.0)
    drain_s = time.perf_counter() - drain_started
    return arm_s, drain_s


def uniform_timer_load(sim, *, timers: int, horizon: float = 60.0) -> float:
    """A plain (no-cancel) load: ``timers`` timers uniform over ``horizon``."""
    started = time.perf_counter()
    step = horizon / timers
    for index in range(timers):
        timer = sim.timeout((index * 7919) % timers * step)
        timer.add_callback(lambda _event: None)
    sim.run(until=horizon)
    return time.perf_counter() - started


def run_benchmark(concurrent: int, resets: int) -> dict:
    """Time both schedulers on both workloads; returns the result payload."""
    results: dict = {"concurrent_timers": concurrent, "resets": resets}

    legacy_arm, legacy_drain = watchdog_reset_storm(
        LegacyHeapSimulator(), concurrent=concurrent, resets=resets)
    calendar_arm, calendar_drain = watchdog_reset_storm(
        Simulator(), concurrent=concurrent, resets=resets)
    results["cancel_heavy"] = {
        "legacy_heap_arm_s": round(legacy_arm, 4),
        "legacy_heap_drain_s": round(legacy_drain, 4),
        "calendar_queue_arm_s": round(calendar_arm, 4),
        "calendar_queue_drain_s": round(calendar_drain, 4),
        "total_speedup": round(
            (legacy_arm + legacy_drain) / (calendar_arm + calendar_drain), 2)
        if calendar_arm + calendar_drain > 0 else float("inf"),
        "drain_speedup": round(legacy_drain / calendar_drain, 2)
        if calendar_drain > 0 else float("inf"),
    }

    timers = concurrent * resets
    legacy_uniform = uniform_timer_load(LegacyHeapSimulator(), timers=timers)
    calendar_uniform = uniform_timer_load(Simulator(), timers=timers)
    results["uniform"] = {
        "timers": timers,
        "legacy_heap_s": round(legacy_uniform, 4),
        "calendar_queue_s": round(calendar_uniform, 4),
        "speedup": round(legacy_uniform / calendar_uniform, 2)
        if calendar_uniform > 0 else float("inf"),
    }
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--timers", type=int, default=10_000,
                        help="concurrent in-flight timers per round (default 10000)")
    parser.add_argument("--resets", type=int, default=16,
                        help="watchdog resets per timer (default 16)")
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="required cancel-heavy speedup (default 5.0)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the results as JSON to PATH")
    arguments = parser.parse_args(argv)

    results = run_benchmark(arguments.timers, arguments.resets)
    cancel = results["cancel_heavy"]
    uniform = results["uniform"]
    print(f"cancel-heavy ({arguments.timers} concurrent x {arguments.resets} resets):")
    print(f"  arm:   legacy {cancel['legacy_heap_arm_s']}s, "
          f"calendar {cancel['calendar_queue_arm_s']}s")
    print(f"  drain: legacy {cancel['legacy_heap_drain_s']}s, "
          f"calendar {cancel['calendar_queue_drain_s']}s "
          f"-> {cancel['drain_speedup']}x  (total {cancel['total_speedup']}x)")
    print(f"uniform ({uniform['timers']} timers): "
          f"legacy {uniform['legacy_heap_s']}s, calendar {uniform['calendar_queue_s']}s "
          f"-> {uniform['speedup']}x")

    if arguments.json:
        Path(arguments.json).write_text(json.dumps(results, indent=2) + "\n")

    if cancel["drain_speedup"] < arguments.min_speedup:
        print(f"FAIL: cancel-heavy drain speedup {cancel['drain_speedup']}x is "
              f"below the {arguments.min_speedup}x bar", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
