"""Report generation: turn experiment runs into an EXPERIMENTS.md-style document."""

from __future__ import annotations

from typing import Sequence

from .runner import ExperimentRun

#: One-line description of what each experiment reproduces.
EXPERIMENT_DESCRIPTIONS = {
    "E1": "Scenario 'Timestamp generation' (Figure 4): responsibility spread and continuity.",
    "E2": "Scenario 'Concurrent patch publishing' (Figure 5): serialization and total-order retrieval.",
    "E3": "Scenario 'Master-key peer departures': graceful leave and crash.",
    "E4": "Scenario 'New Master-key peer joining': key and timestamp hand-over.",
    "E5": "Prototype measurement: update response time vs. peers and network latency.",
    "E6": "Motivation (Section 1): P2P-LTR vs. centralized reconciler vs. LWW.",
    "E7": "Design ablation: P2P-Log availability vs. replication factor |Hr|.",
    "E8": "Substrate validation: Chord lookup correctness and hop counts.",
}


def render_markdown_report(runs: Sequence[ExperimentRun], *, title: str = "Experiment results") -> str:
    """Render runs as a markdown document (tables + descriptions)."""
    lines = [f"# {title}", ""]
    for run in runs:
        description = EXPERIMENT_DESCRIPTIONS.get(run.experiment_id, "")
        lines.append(f"## {run.experiment_id} — {run.table.title}")
        if description:
            lines.append("")
            lines.append(description)
        if run.parameters:
            rendered = ", ".join(f"{key}={value}" for key, value in sorted(run.parameters.items()))
            lines.append("")
            lines.append(f"Parameters: `{rendered}`")
        lines.append("")
        lines.append(run.table.to_markdown())
        for note in run.table.notes:
            lines.append(f"*{note}*")
            lines.append("")
    return "\n".join(lines)
