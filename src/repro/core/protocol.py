"""Result types exchanged by the P2P-LTR procedures."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


#: Validation statuses returned by the Master-key peer.
STATUS_OK = "ok"
STATUS_BEHIND = "behind"
#: The Master lost responsibility for the key while the request was in
#: flight (re-election); nothing was committed — the proposal must be
#: re-issued, which re-routes it to the new Master.
STATUS_REJECTED = "rejected"


@dataclass(frozen=True)
class ValidationResult:
    """Answer of the Master-key peer to a patch validation request."""

    status: str
    ts: Optional[int] = None
    last_ts: Optional[int] = None
    replicas: int = 0

    @property
    def accepted(self) -> bool:
        """``True`` when the patch was validated and published."""
        return self.status == STATUS_OK

    @property
    def rejected(self) -> bool:
        """``True`` when the Master refused atomically (re-election mid-flight)."""
        return self.status == STATUS_REJECTED

    @classmethod
    def ok(cls, ts: int, replicas: int) -> "ValidationResult":
        """The Master accepted the proposed timestamp and published the patch."""
        return cls(status=STATUS_OK, ts=ts, replicas=replicas)

    @classmethod
    def behind(cls, last_ts: int) -> "ValidationResult":
        """The proposer is behind; it must retrieve patches up to ``last_ts``."""
        return cls(status=STATUS_BEHIND, last_ts=last_ts)

    @classmethod
    def reelection(cls, last_ts: int) -> "ValidationResult":
        """The Master lost the key mid-publication; nothing was committed."""
        return cls(status=STATUS_REJECTED, last_ts=last_ts)

    def to_payload(self) -> dict:
        """Serialise for transmission over the (simulated) network."""
        return {
            "status": self.status,
            "ts": self.ts,
            "last_ts": self.last_ts,
            "replicas": self.replicas,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ValidationResult":
        """Rebuild from a network payload."""
        return cls(
            status=payload["status"],
            ts=payload.get("ts"),
            last_ts=payload.get("last_ts"),
            replicas=payload.get("replicas", 0),
        )


@dataclass(frozen=True)
class BatchValidationResult:
    """Answer of the Master-key peer to a *batched* validation request.

    On success the Master assigned the dense timestamp range
    ``first_ts .. last_ts`` to the batch's patches (in staging order) and
    published all of them; ``behind`` and ``rejected`` carry the Master's
    current ``last_ts`` so the user peer can retrieve / re-propose.
    """

    status: str
    first_ts: Optional[int] = None
    last_ts: Optional[int] = None
    replicas: int = 0

    @property
    def accepted(self) -> bool:
        """``True`` when the whole batch was validated and published."""
        return self.status == STATUS_OK

    @property
    def rejected(self) -> bool:
        """``True`` when the Master refused the batch atomically (re-election)."""
        return self.status == STATUS_REJECTED

    @classmethod
    def ok(cls, first_ts: int, last_ts: int, replicas: int) -> "BatchValidationResult":
        """The whole batch was committed with timestamps ``first_ts..last_ts``."""
        return cls(status=STATUS_OK, first_ts=first_ts, last_ts=last_ts, replicas=replicas)

    @classmethod
    def behind(cls, last_ts: int) -> "BatchValidationResult":
        """The proposer is behind; it must retrieve patches up to ``last_ts``."""
        return cls(status=STATUS_BEHIND, last_ts=last_ts)

    @classmethod
    def reelection(cls, last_ts: int) -> "BatchValidationResult":
        """The Master lost the key mid-batch; nothing was committed."""
        return cls(status=STATUS_REJECTED, last_ts=last_ts)

    def to_payload(self) -> dict:
        """Serialise for transmission over the (simulated) network."""
        return {
            "status": self.status,
            "first_ts": self.first_ts,
            "last_ts": self.last_ts,
            "replicas": self.replicas,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "BatchValidationResult":
        """Rebuild from a network payload."""
        return cls(
            status=payload["status"],
            first_ts=payload.get("first_ts"),
            last_ts=payload.get("last_ts"),
            replicas=payload.get("replicas", 0),
        )


@dataclass(frozen=True)
class CommitResult:
    """Outcome of a user peer's edit-commit (procedures 2 and 3 of the paper)."""

    document_key: str
    ts: int
    attempts: int
    retrieved_patches: int
    started_at: float
    finished_at: float
    author: str = "unknown"
    log_replicas: int = 0

    @property
    def latency(self) -> float:
        """Wall-clock (simulated) duration of the whole commit."""
        return self.finished_at - self.started_at

    @property
    def had_conflicts(self) -> bool:
        """``True`` when concurrent updates forced at least one retrieval round."""
        return self.retrieved_patches > 0


@dataclass(frozen=True)
class BatchCommitResult:
    """Outcome of flushing one commit batch through the batched pipeline."""

    document_key: str
    first_ts: int
    last_ts: int
    edits: int
    attempts: int
    retrieved_patches: int
    started_at: float
    finished_at: float
    author: str = "unknown"
    log_replicas: int = 0

    @property
    def latency(self) -> float:
        """Wall-clock (simulated) duration of the whole flush."""
        return self.finished_at - self.started_at

    @property
    def per_edit_latency(self) -> float:
        """Flush latency amortised over the batch's edits."""
        return self.latency / self.edits if self.edits else 0.0

    @property
    def had_conflicts(self) -> bool:
        """``True`` when concurrent updates forced at least one retrieval round."""
        return self.retrieved_patches > 0


@dataclass
class SyncResult:
    """Outcome of a read-only synchronisation (retrieval procedure alone)."""

    document_key: str
    from_ts: int
    to_ts: int
    retrieved_patches: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0
    already_current: bool = False
    #: Timestamp of the checkpoint the fast path bootstrapped from, or
    #: ``None`` when the sync replayed patches only (checkpointing off,
    #: staleness below the interval, or every checkpoint unreachable).
    checkpoint_ts: Optional[int] = None
    details: dict = field(default_factory=dict)

    @property
    def used_checkpoint(self) -> bool:
        """``True`` when the sync bootstrapped from a document snapshot."""
        return self.checkpoint_ts is not None

    @property
    def latency(self) -> float:
        """Wall-clock (simulated) duration of the synchronisation."""
        return self.finished_at - self.started_at
