"""Cross-backend equivalence and determinism regression tests.

Three guarantees of the execution-runtime abstraction:

1. **SimRuntime is the kernel, bit for bit** — a seeded E2-style commit
   history replays identically across two independently built systems,
   and the PR-3 checkpoint-equivalence differential rows reproduce the
   golden values captured before the refactor (``GOLDEN_DIFFERENTIAL``).
2. **AsyncioRuntime is correct under real interleavings** — concurrent
   editors on the wall-clock backend preserve the three commit invariants
   (dense timestamps, prefix-complete log, OT convergence), within a
   bounded wall-clock budget.
3. The acceptance-scale live run (≥16 peers, ≥4 editors, ≥200 edits) is
   the ``slow``-marked variant of (2).
"""

import hashlib
import time

import pytest

from repro.core import LtrConfig, LtrSystem
from repro.experiments.scenarios import LIVE_CHORD_CONFIG
from repro.net import ConstantLatency
from repro.runtime import AsyncioRuntime, RandomStreams, SimRuntime

from test_checkpoint_equivalence import KEY as DIFF_KEY
from test_checkpoint_equivalence import build_system as build_diff_system
from test_checkpoint_equivalence import drive_history
from test_invariants import assert_system_invariants

# ------------------------------------------------- sim-backend identity --

#: Golden rows of the PR-3 differential harness (checkpointed deployment,
#: cold sync of peer #2), captured on the pre-refactor kernel.  SimRuntime
#: must reproduce them bit for bit: same retrieval counts, same checkpoint
#: bootstrap, same replica bytes.
GOLDEN_DIFFERENTIAL = {
    (2, False): {"steps": 12, "fast_retrieved": 0, "full_retrieved": 12,
                 "checkpoint_ts": 12,
                 "text_sha256": "94a2d9007b85d8d275c96be6c51485a52cbd2c7f93e41a47a45f82584b1b4a5f"},
    (2, True): {"steps": 12, "fast_retrieved": 1, "full_retrieved": 12,
                "checkpoint_ts": 11,
                "text_sha256": "6b5fdf01d303b13b74f428672830fb042273386fa497f48e5d27224a43f096e8"},
    (7, False): {"steps": 12, "fast_retrieved": 0, "full_retrieved": 12,
                 "checkpoint_ts": 12,
                 "text_sha256": "b9520c2a588a0cd273db3aaaa467a4e32973f6d266b234c8b7bac5020ff1fdd2"},
    (7, True): {"steps": 12, "fast_retrieved": 1, "full_retrieved": 12,
                "checkpoint_ts": 11,
                "text_sha256": "5b29f2548bdabdafa8590bf6f5305edfbcdc6ee5f92fae698235b98df2bcee42"},
    (13, False): {"steps": 13, "fast_retrieved": 1, "full_retrieved": 13,
                  "checkpoint_ts": 12,
                  "text_sha256": "49eb9ce823c9be394d42c0dd8c984f76514b9d547d211178b2a2f84479d6f07c"},
    (13, True): {"steps": 13, "fast_retrieved": 1, "full_retrieved": 13,
                 "checkpoint_ts": 12,
                 "text_sha256": "49eb9ce823c9be394d42c0dd8c984f76514b9d547d211178b2a2f84479d6f07c"},
}

KEY = "xwiki:cross"


def seeded_commit_history(system: LtrSystem, *, seed: int, waves: int):
    """A deterministic E2-style run: waves of concurrent two-writer commits."""
    rng = RandomStreams(seed).stream("cross-backend")
    writers = system.peer_names()[:3]
    transcript = []
    for wave in range(waves):
        pair = rng.sample(writers, 2)
        edits = [
            (writer, KEY,
             "\n".join(f"{KEY} l{line} w{wave} by {writer}"
                       for line in range(rng.randint(1, 3))))
            for writer in pair
        ]
        for result in system.run_concurrent_commits(edits):
            transcript.append((result.author, result.ts, result.attempts))
    system.sync_all(KEY)
    replica_texts = sorted(
        "\n".join(user.document(KEY).lines) for user in system.users()
    )
    return transcript, system.last_ts(KEY), replica_texts


def test_sim_runtime_replays_seeded_history_identically():
    outcomes = []
    for _ in range(2):
        system = LtrSystem(seed=29, latency=ConstantLatency(0.004))
        system.bootstrap(8)
        assert isinstance(system.runtime, SimRuntime)
        outcomes.append(seeded_commit_history(system, seed=29, waves=6))
    first, second = outcomes
    assert first == second, "SimRuntime runs with one seed diverged"
    transcript, last_ts, _texts = first
    assert last_ts == len(transcript) == 12


@pytest.mark.parametrize("batched", [False, True], ids=["unbatched", "batched"])
@pytest.mark.parametrize("seed", [2, 7, 13])
def test_sim_runtime_reproduces_pr3_differential_rows(seed, batched):
    """The refactored stack reproduces the pre-refactor golden rows exactly."""
    golden = GOLDEN_DIFFERENTIAL[(seed, batched)]
    steps = golden["steps"]
    fast = build_diff_system(seed, batched=batched, checkpointing=True)
    full = build_diff_system(seed, batched=batched, checkpointing=False)
    for system in (fast, full):
        drive_history(system, seed=seed, batched=batched, steps=steps)
    cold = fast.peer_names()[2]
    fast_result = fast.sync(cold, DIFF_KEY)
    full_result = full.sync(cold, DIFF_KEY)
    replica = fast.user(cold).document(DIFF_KEY)
    digest = hashlib.sha256("\n".join(replica.lines).encode()).hexdigest()

    assert fast.last_ts(DIFF_KEY) == steps
    assert fast_result.retrieved_patches == golden["fast_retrieved"]
    assert full_result.retrieved_patches == golden["full_retrieved"]
    assert fast_result.checkpoint_ts == golden["checkpoint_ts"]
    assert replica.applied_ts == steps
    assert digest == golden["text_sha256"], (
        "replica bytes diverged from the pre-refactor kernel"
    )


# ------------------------------------------------ asyncio-backend runs --


def build_live_system(peers: int, seed: int) -> LtrSystem:
    config = LtrConfig(
        runtime_backend="asyncio",
        validation_retry_delay=0.02,
        parallel_retrieval=True,
    )
    system = LtrSystem(
        ltr_config=config,
        chord_config=LIVE_CHORD_CONFIG,
        seed=seed,
        latency=ConstantLatency(0.0005),
    )
    system.bootstrap(peers, stabilize_time=20.0)
    return system


def drive_live_editors(system: LtrSystem, *, editors: int, edits: int) -> int:
    writers = system.peer_names()[:editors]
    committed = 0
    for wave in range(max(1, edits // editors)):
        batch = [
            (writer, KEY,
             "\n".join(f"live l{line} w{wave} by {writer}" for line in range(3)))
            for writer in writers
        ]
        committed += len(system.run_concurrent_commits(batch))
    return committed


def test_asyncio_backend_preserves_commit_invariants():
    """Fast live run: real interleavings, all three invariants, bounded wall-clock."""
    started = time.monotonic()
    system = build_live_system(peers=8, seed=5)
    try:
        assert isinstance(system.runtime, AsyncioRuntime)
        committed = drive_live_editors(system, editors=3, edits=24)
        assert committed == 24
        assert system.last_ts(KEY) == committed
        assert_system_invariants(system, [KEY])
    finally:
        system.shutdown()
    assert time.monotonic() - started < 90.0, "live smoke run blew its wall-clock budget"


@pytest.mark.slow
def test_asyncio_backend_at_acceptance_scale():
    """≥16-peer ring, ≥200 edits from ≥4 concurrent editors (acceptance run)."""
    started = time.monotonic()
    system = build_live_system(peers=16, seed=17)
    try:
        committed = drive_live_editors(system, editors=4, edits=200)
        assert committed >= 200
        assert system.last_ts(KEY) == committed
        assert_system_invariants(system, [KEY])
    finally:
        system.shutdown()
    assert time.monotonic() - started < 300.0, "live acceptance run blew its wall-clock budget"
