"""Durable crash-restart recovery, end to end (``storage_backend="sqlite"``).

A peer with the SQLite backend that crashes and restarts with
``recover=True`` is a new process on the same disk: routing state is gone,
but the storage backend reopens and reloads every committed item — owned
entries, replica copies, the P2P-Log shard and the KTS counters.  The
tests here drive that path through the public system API and through the
nemesis (``FaultPlan.crash(recover=True)`` / ``durable_restart``), and
close with the differential guarantee: a dict-backed and a SQLite-backed
run of the same seeded workload are *indistinguishable* — same replica
texts, same applied timestamps, same message counts — across ten seeds.
"""

import pytest

from repro.check import ConvergenceChecker
from repro.core import LtrConfig, LtrSystem
from repro.errors import ConfigurationError
from repro.faults import FaultPlan, Nemesis

KEY = "xwiki:durable-test"


def build_system(tmp_path, *, seed=7, peers=8, backend="sqlite"):
    system = LtrSystem(
        seed=seed,
        ltr_config=LtrConfig(
            validation_retries=3,
            validation_retry_delay=0.25,
            storage_backend=backend,
            storage_dir=str(tmp_path) if backend != "memory" else None,
        ),
    )
    system.bootstrap(peers)
    return system


def log_shard(node):
    """Log-entry placements owned by ``node`` (no checkpoints, no counters)."""
    return sorted(
        item.key for item in node.storage.owned_items()
        if "#" in item.key and "!ckpt" not in item.key
        and not item.key.startswith("kts:")
    )


def heaviest_log_peer(system, *, excluding=()):
    return max(
        (name for name in system.peer_names() if name not in excluding),
        key=lambda name: len(log_shard(system.ring.node(name))),
    )


# ---------------------------------------------------------------------------
# restart flavours against the durable backend
# ---------------------------------------------------------------------------


def test_recover_restart_reloads_the_persisted_state(tmp_path):
    system = build_system(tmp_path)
    try:
        writer = next(
            name for name in system.peer_names() if name != system.master_of(KEY)
        )
        for index in range(12):
            system.edit_and_commit(writer, KEY, f"revision {index}")
        system.run_for(2.0)
        victim = heaviest_log_peer(
            system, excluding={writer, system.master_of(KEY)}
        )
        node = system.ring.node(victim)
        assert node.storage.durable
        shard = log_shard(node)
        keys_before = set(node.storage.keys())
        assert shard, "victim holds no log placements; pick a different seed"
        system.ring.crash(victim)
        system.restart_peer(victim, recover=True)
        assert set(node.storage.keys()) >= keys_before, (
            "durable restart lost committed items"
        )
        assert set(log_shard(node)) >= set(shard)
        report = system.check_consistency(KEY)
        assert report.converged and report.log_continuous
    finally:
        system.shutdown()


def test_amnesiac_restart_wipes_the_disk_too(tmp_path):
    system = build_system(tmp_path)
    try:
        writer = next(
            name for name in system.peer_names() if name != system.master_of(KEY)
        )
        for index in range(8):
            system.edit_and_commit(writer, KEY, f"revision {index}")
        victim = heaviest_log_peer(
            system, excluding={writer, system.master_of(KEY)}
        )
        node = system.ring.node(victim)
        system.ring.crash(victim)
        rejoin = system.prepare_restart(victim, amnesia=True)
        # Before the re-join runs: storage is empty, and so is the database
        # (an amnesiac peer comes back on fresh hardware).
        assert len(node.storage) == 0
        node.storage.reopen()
        assert len(node.storage) == 0, "amnesia left data in the database"
        system.runtime.run(until=system.runtime.process(rejoin))
        system.ring.wait_until_stable(max_time=120)
    finally:
        system.shutdown()


def test_restart_rejects_amnesia_plus_recover(tmp_path):
    system = build_system(tmp_path, peers=4)
    try:
        victim = system.peer_names()[-1]
        system.ring.crash(victim)
        with pytest.raises(ValueError):
            system.prepare_restart(victim, amnesia=True, recover=True)
    finally:
        system.shutdown()


def test_auto_storage_dir_is_removed_on_shutdown():
    system = LtrSystem(ltr_config=LtrConfig(storage_backend="sqlite"))
    system.bootstrap(3)
    directory = system.storage_dir
    assert directory is not None and directory.exists()
    assert list(directory.glob("*.sqlite"))
    system.shutdown()
    assert not directory.exists()


def test_explicit_storage_dir_is_kept_on_shutdown(tmp_path):
    system = build_system(tmp_path, peers=3)
    system.shutdown()
    assert tmp_path.exists()
    assert list(tmp_path.glob("*.sqlite"))


# ---------------------------------------------------------------------------
# nemesis integration: the durable-restart fault action
# ---------------------------------------------------------------------------


def test_fault_plan_rejects_amnesia_plus_recover():
    with pytest.raises(ConfigurationError):
        FaultPlan().crash(at=1.0, peer="p", restart_after=1.0,
                          amnesia=True, recover=True)


def test_nemesis_durable_restart_converges_with_data(tmp_path):
    system = build_system(tmp_path, seed=13)
    try:
        writer = next(
            name for name in system.peer_names() if name != system.master_of(KEY)
        )
        for index in range(10):
            system.edit_and_commit(writer, KEY, f"revision {index}")
        system.run_for(1.0)
        victim = heaviest_log_peer(
            system, excluding={writer, system.master_of(KEY)}
        )
        shard = log_shard(system.ring.node(victim))
        plan = FaultPlan().crash(at=0.5, peer=victim, restart_after=1.5,
                                 recover=True)
        checker = ConvergenceChecker(keys=[KEY])
        system.add_observer(checker)
        nemesis = Nemesis(system, plan).start()
        system.run_for(8.0)
        assert not nemesis.errors
        assert [event.action.kind for event in plan.events] \
            == ["crash", "durable-restart"]
        node = system.ring.node(victim)
        assert node.alive
        assert set(log_shard(node)) >= set(shard)
        assert checker.violations() == []
        final = checker.final_check(system)
        assert final.ok
    finally:
        system.shutdown()


def test_master_counter_survives_durable_restart(tmp_path):
    """The KTS counter comes back from disk: timestamps continue, no takeover."""
    system = build_system(tmp_path, seed=29)
    try:
        master = system.master_of(KEY)
        writer = next(name for name in system.peer_names() if name != master)
        for index in range(6):
            system.edit_and_commit(writer, KEY, f"before crash {index}")
        assert system.last_ts(KEY) == 6
        system.ring.crash(master)
        system.restart_peer(master, recover=True)
        counter = system.ring.node(master).storage.get(f"kts:{KEY}")
        assert counter is not None and counter.value == 6
        for index in range(3):
            system.edit_and_commit(writer, KEY, f"after recovery {index}")
        assert system.last_ts(KEY) == 9
        report = system.check_consistency(KEY)
        assert report.converged and report.log_continuous
    finally:
        system.shutdown()


# ---------------------------------------------------------------------------
# differential: dict-backed and SQLite-backed runs are indistinguishable
# ---------------------------------------------------------------------------


def run_workload(backend, tmp_path, seed):
    """A small two-writer workload; returns every externally visible outcome."""
    system = build_system(tmp_path, seed=seed, peers=6, backend=backend)
    try:
        documents = ("xwiki:diff-a", "xwiki:diff-b")
        masters = {system.master_of(key) for key in documents}
        writers = [name for name in system.peer_names() if name not in masters][:2]
        for index in range(5):
            for writer, key in zip(writers, documents):
                system.edit_and_commit(writer, key, f"{key} rev {index} by {writer}")
        system.run_for(1.5)
        outcome = {"stats": system.network.stats.snapshot()}
        for key in documents:
            system.sync_all(key)
            report = system.check_consistency(key)
            outcome[key] = {
                "last_ts": report.last_ts,
                "converged": report.converged,
                "log_continuous": report.log_continuous,
                "canonical": report.canonical_lines,
                "applied": {
                    user.node.address.name: user.documents[key].applied_ts
                    for user in system.users()
                    if key in user.documents
                },
            }
        return outcome
    finally:
        system.shutdown()


@pytest.mark.parametrize("seed", range(10))
def test_sqlite_backend_is_differentially_identical_to_memory(tmp_path, seed):
    memory = run_workload("memory", tmp_path / "mem", seed)
    durable = run_workload("sqlite", tmp_path / "sql", seed)
    assert memory == durable
