"""Uniform DHT client interface.

The timestamping and logging services of P2P-LTR only need four operations
from the DHT: ``put``, ``get``, ``remove`` and ``lookup`` (find the peer
responsible for a key).  This module defines that contract so the services
can run either against the full Chord ring (production path, used by all
experiments) or against a trivial in-process table (used by the centralized
baseline and by fast unit tests of client-side logic).

All operations are *simulation processes* (generator functions used with
``yield from``) because the Chord-backed implementation needs to perform
network round trips.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Optional


class DhtClient(ABC):
    """Client-side view of a distributed hash table."""

    @abstractmethod
    def put(self, key: str, value: Any, *, key_id: Optional[int] = None):
        """Store ``value`` under ``key`` (process; returns placement info)."""

    @abstractmethod
    def get(self, key: str, *, key_id: Optional[int] = None):
        """Fetch the value stored under ``key`` (process; raises KeyNotFound)."""

    @abstractmethod
    def remove(self, key: str, *, key_id: Optional[int] = None):
        """Delete ``key`` (process; returns whether it existed)."""

    @abstractmethod
    def lookup(self, key: str, *, key_id: Optional[int] = None):
        """Locate the peer responsible for ``key`` (process; returns a descriptor)."""

    @abstractmethod
    def call_owner(self, routing_key: str, method: str, *, key_id: Optional[int] = None,
                   **arguments: Any):
        """Invoke an RPC ``method`` on the peer responsible for ``routing_key`` (process).

        The first parameter is only used for routing; the arguments forwarded
        to the remote handler are the keyword ``arguments`` (which may
        therefore freely include a ``key`` argument of their own).
        """
