"""Live collaborative wiki: the protocol stack on the asyncio runtime.

The paper's demonstrator ran as a *live* XWiki/Open Chord deployment; this
example is the reproduction's equivalent on the new execution-runtime
abstraction: the identical Chord/KTS/P2P-Log/Master stack is booted on
:class:`~repro.runtime.AsyncioRuntime` — wall-clock timers, real
in-process concurrency — and driven by **native asyncio editor tasks**
that race each other through an :class:`asyncio.Queue`.  Afterwards the
three commit invariants (dense timestamps, prefix-complete log, OT
convergence) are verified on the outcome — interleavings the
deterministic simulator's scheduler never produced.

Run with ``python examples/live_wiki.py`` (add ``--quick`` for a smaller
ring, e.g. in CI smoke jobs).
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time
from dataclasses import dataclass

from repro.core import LtrConfig, LtrSystem
from repro.errors import ValidationFailed
from repro.experiments.scenarios import LIVE_CHORD_CONFIG
from repro.net import ConstantLatency

PAGE = "xwiki:LivePage"


@dataclass
class EditorReport:
    name: str
    committed: int
    conflicts: int


def build_live_system(peers: int, seed: int = 23) -> LtrSystem:
    """A P2P-LTR deployment on the wall-clock asyncio backend."""
    config = LtrConfig(
        runtime_backend="asyncio",
        validation_retry_delay=0.02,
        parallel_retrieval=True,
        # Under sustained wall-clock contention a proposer can stay behind
        # for many rounds before winning the Master's FIFO race; give the
        # validate-retrieve-retry loop real headroom before it reports a
        # livelock.
        max_validation_attempts=256,
    )
    system = LtrSystem(
        ltr_config=config,
        chord_config=LIVE_CHORD_CONFIG,
        seed=seed,
        latency=ConstantLatency(0.0005),
    )
    system.bootstrap(peers, stabilize_time=20.0)
    return system


async def editor(system: LtrSystem, name: str, edits: int, results) -> EditorReport:
    """One live editor: a native asyncio task committing through the stack.

    Each commit is a kernel process awaited over the runtime bridge
    (:meth:`~repro.runtime.AsyncioRuntime.wait`); the OS scheduler — not a
    deterministic event queue — decides how the editors interleave.  A
    commit that exhausts its validation attempts (pure contention livelock)
    keeps its pending patch; the editor backs off and re-commits, like a
    human pressing "save" again.
    """
    runtime = system.runtime
    user = system.user(name)
    committed = conflicts = 0
    # Scope-local named stream: inside this task the draws come from the
    # sub-stream "editor.think#<task name>", so concurrent editors never
    # interleave draws within one stream.
    think = runtime.rng.stream("editor.think")
    for revision in range(edits):
        user.edit(PAGE, f"= LivePage =\nrev {revision} by {name}\nsecond line")
        while True:
            try:
                outcome = await runtime.wait(
                    runtime.process(user.commit(PAGE), name=f"commit:{name}:{revision}")
                )
                break
            except ValidationFailed:
                await asyncio.sleep(0.02)
        if outcome is not None:
            committed += 1
            if outcome.retrieved_patches:
                conflicts += 1
            await results.put((name, outcome.ts))
        # Think time between saves: without it the in-sync editor monopolises
        # the Master (its proposal is always fresh while everyone else pays a
        # retrieval round-trip first) and the feed degenerates into streaks.
        await asyncio.sleep(think.uniform(0.001, 0.006))
    return EditorReport(name=name, committed=committed, conflicts=conflicts)


async def drive(system: LtrSystem, editors: int, edits_per_editor: int):
    """Race ``editors`` concurrent editor tasks; drain the commit feed."""
    runtime = system.runtime
    results = runtime.queue()
    writers = system.peer_names()[:editors]
    tasks = [
        runtime.spawn(editor(system, name, edits_per_editor, results), name=f"editor:{name}")
        for name in writers
    ]
    reports = await asyncio.gather(*tasks)
    feed = []
    while not results.empty():
        feed.append(results.get_nowait())
    return reports, feed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small ring / few edits (CI smoke)")
    arguments = parser.parse_args(argv)
    peers = 8 if arguments.quick else 16
    editors = 3 if arguments.quick else 4
    edits_per_editor = 8 if arguments.quick else 50

    print(f"booting a live {peers}-peer ring on the asyncio runtime...")
    started = time.perf_counter()
    system = build_live_system(peers)
    print(f"  ring stable after {time.perf_counter() - started:.2f}s wall clock "
          f"(backend={system.runtime_backend})")

    try:
        print(f"\n{editors} concurrent editors x {edits_per_editor} edits on {PAGE!r}:")
        commit_started = time.perf_counter()
        reports, feed = system.runtime.run_until_complete(
            drive(system, editors, edits_per_editor)
        )
        elapsed = time.perf_counter() - commit_started
        total = sum(report.committed for report in reports)
        for report in reports:
            print(f"  {report.name:<8} committed {report.committed:>3} "
                  f"({report.conflicts} behind-and-rebased)")
        print(f"  {total} commits in {elapsed:.2f}s wall clock "
              f"({total / elapsed:.1f} commits/s)")

        last_ts = system.last_ts(PAGE)
        entries = system.fetch_log(PAGE, 1, last_ts)
        dense = [entry.ts for entry in entries] == list(range(1, last_ts + 1))
        report = system.check_consistency(PAGE)
        print("\ninvariants under real interleavings:")
        print(f"  dense timestamps 1..{last_ts}: {dense}")
        print(f"  prefix-complete log:          {report.log_continuous}")
        print(f"  OT convergence:               {report.converged} "
              f"({report.distinct_contents} distinct replica content(s))")
        tail = sorted(feed, key=lambda item: item[1])[-3:]
        print("  last commits in the live feed: "
              + ", ".join(f"ts={ts} by {name}" for name, ts in tail))
        ok = dense and report.log_continuous and report.converged and total == last_ts
        print("\nOK" if ok else "\nINVARIANT VIOLATION")
        return 0 if ok else 1
    finally:
        system.shutdown()


if __name__ == "__main__":
    sys.exit(main())
