"""The in-memory storage backend (the default, and the historical one).

A thin wrapper over a Python dict: iteration order is insertion order by
construction, nothing survives :meth:`reopen` (there is no disk), and every
operation is O(1).  This is the backend every seeded experiment runs on by
default, so its semantics define the contract the durable backends must
reproduce exactly.
"""

from __future__ import annotations

from typing import Iterator, Optional

from .api import StorageBackend, StoredItem


class MemoryBackend(StorageBackend):
    """Volatile dict-backed storage."""

    durable = False

    def __init__(self) -> None:
        self._items: dict[str, StoredItem] = {}

    def get(self, key: str) -> Optional[StoredItem]:
        return self._items.get(key)

    def put(self, item: StoredItem) -> None:
        self._items[item.key] = item

    def delete(self, key: str) -> bool:
        return self._items.pop(key, None) is not None

    def scan(self) -> Iterator[StoredItem]:
        return iter(self._items.values())

    def clear(self) -> None:
        self._items.clear()

    def reopen(self) -> None:
        # Nothing was persisted: a restarted process starts empty.
        self._items.clear()

    def keys(self) -> list[str]:
        return list(self._items)

    def __contains__(self, key: str) -> bool:
        return key in self._items

    def __len__(self) -> int:
        return len(self._items)
