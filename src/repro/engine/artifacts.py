"""Machine-readable experiment artifacts.

Every engine run can be snapshotted as one JSON file per scenario, so the
performance trajectory of the reproduction is diffable across commits
(``benchmarks/run_all.py`` writes ``BENCH_<id>.json`` files this way) and
reports can be re-rendered without re-simulating.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Union

from .runner import ScenarioResult


def headline_metrics(result: ScenarioResult) -> dict[str, float]:
    """Aggregate headline numbers for a scenario (perf-trajectory tracking).

    Every numeric column whose name mentions a latency, hop count, attempt
    or validation/retrieval count is averaged over the rows; booleans named
    like correctness flags are reported as a fraction.
    """
    interesting = ("latency", "hops", "attempts", "retrieved", "validated",
                   "fairness", "fraction", "hit", "per_sec", "rss", "messages")
    metrics: dict[str, float] = {}
    for column in result.spec.columns:
        if not any(tag in column for tag in interesting):
            continue
        values = [row[column] for row in result.rows]
        numeric = [float(value) for value in values
                   if isinstance(value, (int, float)) and not isinstance(value, bool)]
        if numeric:
            metrics[f"mean_{column}"] = sum(numeric) / len(numeric)
    flags = [column for column in result.spec.columns
             if any(row.get(column) is True or row.get(column) is False
                    for row in result.rows)]
    for column in flags:
        values = [row[column] for row in result.rows if isinstance(row[column], bool)]
        if values:
            metrics[f"fraction_{column}"] = sum(1 for value in values if value) / len(values)
    return metrics


def write_artifact(
    result: ScenarioResult,
    directory: Union[str, Path],
    *,
    prefix: str = "",
) -> Path:
    """Write one scenario's JSON artifact; returns the file path."""
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    payload = result.to_json_dict()
    payload["headline"] = headline_metrics(result)
    path = target / f"{prefix}{result.scenario_id}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n")
    return path


def write_artifacts(
    results: Iterable[ScenarioResult],
    directory: Union[str, Path],
    *,
    prefix: str = "",
) -> list[Path]:
    """Write one JSON artifact per scenario result; returns the file paths."""
    return [write_artifact(result, directory, prefix=prefix) for result in results]


def read_artifact(path: Union[str, Path]) -> dict[str, Any]:
    """Load a previously written artifact."""
    return json.loads(Path(path).read_text())
