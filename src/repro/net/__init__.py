"""Network substrate: addresses, messages, latency, failures, RPC.

This package replaces the Java RMI transport of the original P2P-LTR
prototype with a runtime-driven message layer (see the substitution table
in ``DESIGN.md``): deterministic under the simulation backend, wall-clock
concurrent under the asyncio backend.
"""

from .address import Address, make_addresses
from .codec import (
    WIRE_VERSION,
    ErrorEnvelope,
    FrameDecoder,
    copy_payload,
    decode,
    decode_message,
    encode,
    encode_message,
    envelope_from_exception,
    exception_from_envelope,
    frame,
    register_wire_type,
)
from .failures import (
    BernoulliLoss,
    FailureSchedule,
    LossModel,
    NoLoss,
    PartitionManager,
    PerturbationWindow,
    TargetedLoss,
)
from .latency import (
    ConstantLatency,
    LatencyModel,
    LogNormalLatency,
    PairwiseLatency,
    SiteAwareLatency,
    UniformLatency,
    latency_preset,
)
from .message import DeliveryReceipt, Message, MessageKind, TrafficStats
from .rpc import RpcAgent, normalize_backend_error
from .transport import WIRE_FIDELITIES, Network
from .wire import WireEndpoint, WireNetwork

__all__ = [
    "WireEndpoint",
    "WireNetwork",
    "Address",
    "ErrorEnvelope",
    "FrameDecoder",
    "WIRE_FIDELITIES",
    "WIRE_VERSION",
    "copy_payload",
    "decode",
    "decode_message",
    "encode",
    "encode_message",
    "envelope_from_exception",
    "exception_from_envelope",
    "frame",
    "register_wire_type",
    "BernoulliLoss",
    "ConstantLatency",
    "DeliveryReceipt",
    "FailureSchedule",
    "LatencyModel",
    "LogNormalLatency",
    "LossModel",
    "Message",
    "MessageKind",
    "Network",
    "NoLoss",
    "PairwiseLatency",
    "PartitionManager",
    "PerturbationWindow",
    "RpcAgent",
    "SiteAwareLatency",
    "TargetedLoss",
    "TrafficStats",
    "UniformLatency",
    "latency_preset",
    "make_addresses",
    "normalize_backend_error",
]
