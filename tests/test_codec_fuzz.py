"""Hostile-input fuzzing of the wire codec (``repro.net.codec``).

A peer on the open network controls every byte it sends, so the decode
path must treat the input as adversarial: truncated frames, oversize
length prefixes, unknown type tags, bad envelope versions and bit-flipped
bodies must all surface as :class:`~repro.errors.CodecError` — never as an
unhandled exception, a hang, or silently wrong data.

Two layers: a seeded corpus of hand-written hostile frames (each one a
regression for a specific decode branch), and derandomized hypothesis
sweeps that mutate *valid* encodings — the adversarial inputs most likely
to slip past naive validation because they are almost right.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CodecError, ReproError
from repro.net import Address, Message, MessageKind
from repro.net.codec import (
    FRAME_HEADER_SIZE,
    MAX_FRAME_SIZE,
    WIRE_VERSION,
    FrameDecoder,
    decode,
    decode_any,
    decode_message,
    encode,
    encode_message,
    frame,
)
from repro.ot import InsertLine, Patch

SEEDED = settings(max_examples=80, derandomize=True, deadline=None)

#: A representative valid payload to mutate: nested, with a registered
#: wire-type (Patch) inside, so tag handling is on the fuzzed path.
SAMPLE_PAYLOAD = {
    "patch": Patch(operations=(InsertLine(0, "hello"),), base_ts=3,
                   author="alice"),
    "nested": [1, 2.5, "three", None, True],
}

SAMPLE_MESSAGE = Message(
    source=Address("a", "s1"), destination=Address("b", "s2"),
    kind=MessageKind.REQUEST, method="ltr_validate_and_publish",
    payload=SAMPLE_PAYLOAD, request_id=7, sent_at=1.5,
)


def expect_codec_error(data: bytes) -> None:
    """Decoding hostile bytes must raise CodecError — nothing else."""
    for decoder in (decode, decode_message, decode_any):
        with pytest.raises(CodecError):
            decoder(data)


# ------------------------------------------------------------ seeded corpus --

def _hostile(kind: str, body: str) -> bytes:
    """A well-versioned envelope around a hostile body."""
    return f'{{"v":{WIRE_VERSION},"k":"{kind}","d":{body}}}'.encode()


HOSTILE_FRAMES = [
    b"",                                        # empty frame
    b"\x00",                                    # not JSON, not msgpack-valid map
    b"{",                                       # truncated JSON
    b"{}",                                      # JSON but no envelope fields
    b"[]",                                      # decodes, not an envelope dict
    b"{\"v\":999,\"k\":\"payload\",\"d\":1}",   # future wire version
    b"{\"v\":\"x\",\"k\":\"payload\",\"d\":1}",  # version of the wrong type
    b"{\"k\":\"payload\",\"d\":1}",             # version missing entirely
    _hostile("gossip", "1"),                    # unknown envelope kind
    b"\xff\xfe\xfd\xfc",                        # arbitrary binary garbage
    _hostile("payload", '{"~t":"zzz","b":[]}'),  # unknown wire tag
    _hostile("message", "42"),                  # message envelope, scalar body
    _hostile("hello", "[1,2]"),                 # hello body must be a dict
    _hostile("payload", '{"~t":"kind","v":"bogus"}'),  # known tag, bad body
    _hostile("payload", '{"~t":"addr","v":[]}'),  # known tag, empty body
    "{\"v\":1,\"k\":\"payload\",\"d\":\"\ud800\"}".encode("utf-8", "surrogatepass"),
]


@pytest.mark.parametrize("data", HOSTILE_FRAMES,
                         ids=[f"frame-{index}" for index in range(len(HOSTILE_FRAMES))])
def test_hostile_frame_raises_codec_error(data):
    expect_codec_error(data)


def test_unknown_wire_tag_names_the_tag():
    hostile = json.dumps(
        {"v": WIRE_VERSION, "k": "payload", "d": {"~t": "not-a-tag", "b": []}}
    ).encode()
    with pytest.raises(CodecError, match="not-a-tag"):
        decode(hostile)


def test_wrong_envelope_kind_is_typed():
    payload = encode(1)
    with pytest.raises(CodecError):
        decode_message(payload)
    message = encode_message(SAMPLE_MESSAGE)
    with pytest.raises(CodecError):
        decode(message)


# ------------------------------------------------------------ frame decoder --


def test_frame_decoder_rejects_oversize_length_prefix():
    decoder = FrameDecoder()
    hostile = (MAX_FRAME_SIZE + 1).to_bytes(FRAME_HEADER_SIZE, "big")
    with pytest.raises(CodecError):
        decoder.feed(hostile)


def test_frame_decoder_rejects_huge_prefix_without_allocating():
    """A 4 GiB length prefix must fail fast, not reserve 4 GiB."""
    decoder = FrameDecoder(max_frame_size=1024)
    hostile = (2**32 - 1).to_bytes(FRAME_HEADER_SIZE, "big") + b"x" * 10
    with pytest.raises(CodecError):
        decoder.feed(hostile)


def test_truncated_frame_is_held_not_delivered():
    decoder = FrameDecoder()
    body = encode(SAMPLE_PAYLOAD["nested"])
    framed = frame(body)
    assert decoder.feed(framed[:-3]) == []
    assert decoder.pending_bytes == len(framed) - 3
    assert decoder.feed(framed[-3:]) == [body]
    assert decoder.pending_bytes == 0


def test_frame_too_large_to_send_is_rejected_symmetrically():
    with pytest.raises(CodecError):
        frame(b"x" * (MAX_FRAME_SIZE + 1))


@SEEDED
@given(cut=st.integers(min_value=0, max_value=200),
       chunk=st.integers(min_value=1, max_value=7))
def test_frame_decoder_survives_arbitrary_chunking(cut, chunk):
    """Any split of a valid stream yields the same frames, never an error."""
    bodies = [encode(index) for index in range(3)]
    stream = b"".join(frame(body) for body in bodies)
    cut = min(cut, len(stream))
    decoder = FrameDecoder()
    collected = []
    for start in range(0, len(stream), chunk):
        collected.extend(decoder.feed(stream[start:start + chunk]))
    assert collected == bodies
    assert decoder.pending_bytes == 0


# --------------------------------------------------- mutated valid encodings --


@SEEDED
@given(position=st.integers(min_value=0, max_value=10_000),
       bit=st.integers(min_value=0, max_value=7))
def test_bit_flipped_payload_never_crashes(position, bit):
    data = bytearray(encode(SAMPLE_PAYLOAD))
    data[position % len(data)] ^= 1 << bit
    try:
        decode(bytes(data))
    except CodecError:
        pass  # rejected: fine
    except ReproError as exc:  # pragma: no cover - regression trap
        pytest.fail(f"non-codec repro error leaked: {type(exc).__name__}: {exc}")
    # A flip in a string literal may still decode; silently "working" is
    # acceptable as long as nothing crashed or hung.


@SEEDED
@given(position=st.integers(min_value=0, max_value=10_000),
       bit=st.integers(min_value=0, max_value=7))
def test_bit_flipped_message_never_crashes(position, bit):
    data = bytearray(encode_message(SAMPLE_MESSAGE))
    data[position % len(data)] ^= 1 << bit
    try:
        decode_message(bytes(data))
    except CodecError:
        pass
    except ReproError as exc:  # pragma: no cover - regression trap
        pytest.fail(f"non-codec repro error leaked: {type(exc).__name__}: {exc}")


@SEEDED
@given(prefix=st.integers(min_value=1, max_value=300))
def test_truncated_encoding_raises_codec_error(prefix):
    data = encode_message(SAMPLE_MESSAGE)[:prefix]
    full = encode_message(SAMPLE_MESSAGE)
    if len(data) >= len(full):
        return  # not actually truncated
    with pytest.raises(CodecError):
        decode_message(data)


@SEEDED
@given(junk=st.binary(min_size=0, max_size=64))
def test_arbitrary_bytes_raise_codec_error_or_decode_cleanly(junk):
    """Raw attacker-chosen bytes: CodecError or a clean decode, nothing else."""
    try:
        decode_any(junk)
    except CodecError:
        pass
    except ReproError as exc:  # pragma: no cover - regression trap
        pytest.fail(f"non-codec repro error leaked: {type(exc).__name__}: {exc}")
