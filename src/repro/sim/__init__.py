"""Deterministic discrete-event simulation kernel.

This package is the foundation every other subsystem runs on: the simulated
network (:mod:`repro.net`), the Chord DHT (:mod:`repro.chord`) and the
P2P-LTR peers (:mod:`repro.core`) are all implemented as processes scheduled
by a single :class:`Simulator` instance, which makes experiments reproducible
and lets the benchmarks sweep latency, churn and failure parameters without
wall-clock sleeps.
"""

from .events import AllOf, AnyOf, ConditionValue, Event, Future, Timeout
from .process import Process, ProcessGenerator
from .rng import RandomStreams, derive_seed
from .scheduler import Simulator
from .sync import FifoLock, Semaphore
from .tracing import TraceLog, TraceRecord

__all__ = [
    "AllOf",
    "AnyOf",
    "ConditionValue",
    "Event",
    "FifoLock",
    "Future",
    "Process",
    "ProcessGenerator",
    "RandomStreams",
    "Semaphore",
    "Simulator",
    "Timeout",
    "TraceLog",
    "TraceRecord",
    "derive_seed",
]
