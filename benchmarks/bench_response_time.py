"""Benchmark E5 — Update response time vs. number of peers and network latency.

The paper's prototype is used to "check the correctness and response times
of P2P-LTR" while the demonstrator varies the number of peers and the
network latencies.  This benchmark sweeps both knobs through the scenario
engine and reports the commit (validate + publish + acknowledge) response
time; the Chord route cache keeps repeated Master-key lookups off the hop
chain, which is what flattens the curve across ring sizes.

Run with ``pytest benchmarks/bench_response_time.py --benchmark-only -s``.
"""

from repro.experiments import run_experiment


def test_benchmark_response_time(benchmark):
    """E5: response time grows with latency, stays flat-ish with ring size."""
    run = benchmark.pedantic(
        lambda: run_experiment(
            "E5",
            quick=True,
            overrides={
                "peer_counts": (8, 16, 32),
                "latency_presets": ("lan", "campus", "wan"),
                "commits_per_setting": 8,
            },
        ),
        rounds=1,
        iterations=1,
    )
    table = run.table
    print()
    print(table.render())

    by_peers: dict[int, dict[str, float]] = {}
    for row in run.result.rows:
        by_peers.setdefault(row["peers"], {})[row["latency_preset"]] = row[
            "mean_commit_latency_s"
        ]
    # Expected shape: for every ring size, WAN latency costs more than LAN.
    for peers, presets in by_peers.items():
        assert presets["wan"] > presets["lan"], f"unexpected ordering for {peers} peers"
    # Expected shape: growing the ring 4x does not grow LAN response time 4x
    # (lookups are logarithmic and cached, the validation path is a constant
    # number of hops).
    smallest = min(by_peers)
    largest = max(by_peers)
    assert by_peers[largest]["lan"] < 4 * by_peers[smallest]["lan"] + 0.05
