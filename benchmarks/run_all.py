"""Run every experiment in quick mode and snapshot BENCH_<id>.json artifacts.

The artifacts carry each scenario's full rows plus aggregated headline
metrics (mean latencies, hop counts, validation/retrieval counts and a
wall-clock timing of the run), so the performance trajectory of the
reproduction is diffable across PRs::

    PYTHONPATH=src python benchmarks/run_all.py --out benchmarks/artifacts
    git diff benchmarks/artifacts   # what moved since the last snapshot

Use ``--full`` for paper-scale parameters and ``--only E5 E8`` to restrict
the sweep.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.engine import headline_metrics
from repro.experiments import run_experiment, SPEC_FACTORIES


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", metavar="DIR", default="benchmarks/artifacts",
                        help="directory for the BENCH_<id>.json files")
    parser.add_argument("--full", action="store_true",
                        help="use the slower, paper-scale parameters")
    parser.add_argument("--only", nargs="*", default=None, metavar="ID",
                        help="experiment ids to run (default: all)")
    arguments = parser.parse_args(argv)

    target = Path(arguments.out)
    target.mkdir(parents=True, exist_ok=True)
    selected = arguments.only if arguments.only else list(SPEC_FACTORIES)
    unknown = [experiment_id for experiment_id in selected
               if experiment_id not in SPEC_FACTORIES]
    if unknown:
        parser.error(f"unknown experiment ids {unknown}; known: {list(SPEC_FACTORIES)}")

    for experiment_id in SPEC_FACTORIES:
        if experiment_id not in selected:
            continue
        started = time.perf_counter()
        run = run_experiment(experiment_id, quick=not arguments.full)
        elapsed = time.perf_counter() - started
        payload = run.result.to_json_dict()
        payload["headline"] = headline_metrics(run.result)
        payload["wall_clock_s"] = round(elapsed, 3)
        payload["profile"] = "full" if arguments.full else "quick"
        path = target / f"BENCH_{experiment_id}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n")
        headline = ", ".join(
            f"{name}={value:.4g}" for name, value in sorted(payload["headline"].items())
        )
        print(f"{experiment_id}: {elapsed:.1f}s wall clock -> {path}")
        if headline:
            print(f"  {headline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
