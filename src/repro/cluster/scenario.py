"""The canonical live-cluster exercise: commits, a process kill, recovery.

:func:`run_live_cluster` is the one code path behind both the CLI
(``python -m repro.cluster run``) and experiment E16: boot an N-process
ring, drive edits from the launcher's client peer across real process
boundaries, SIGKILL the process hosting the hot document's Master-key peer
mid-run (through the nemesis, so the fault is a recorded plan event), keep
committing while the ring heals, and verify that the log survived the
amputation intact.
"""

from __future__ import annotations

import time
from typing import Any, Optional

from ..faults import FaultPlan, Nemesis
from .config import ClusterConfig
from .launcher import Cluster
from .placement import Placement, find_killable_placement, placement_of


def _percentile(samples: list[float], fraction: float) -> float:
    """The ``fraction`` percentile of ``samples`` (nearest-rank, 0 if empty)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def run_live_cluster(
    config: ClusterConfig,
    *,
    commits: int = 30,
    kill: bool = True,
    kill_after: Optional[int] = None,
    retries: int = 16,
    retry_delay: float = 0.25,
) -> dict[str, Any]:
    """Boot a cluster, drive ``commits`` edits, optionally kill the Master.

    With ``kill=True`` the document key is *chosen* so that its Master-key
    peer lives in a killable child process while the Master's ring successor
    (holder of the replicated last-ts and KTS counter) survives elsewhere —
    the offline placement math makes the fault deterministic.  The kill
    fires through a :class:`~repro.faults.Nemesis` after ``kill_after``
    successful commits (default: half of them).

    Returns a flat report dict (the E16 row).
    """
    kill = kill and config.processes > 1
    placement: Placement = (
        find_killable_placement(config) if kill else placement_of(config, "doc-0")
    )
    key = placement.key
    kill_point = kill_after if kill_after is not None else commits // 2
    latencies: list[float] = []
    ok = failed = 0
    post_kill_ok = 0
    total_attempts = 0
    last_ts = 0
    nemesis: Optional[Nemesis] = None
    document_lines: list[str] = []

    with Cluster(config) as cluster:
        started = time.monotonic()
        for index in range(commits):
            if kill and index == kill_point:
                plan = FaultPlan().kill_process(0.0, placement.kill_target)
                nemesis = Nemesis(cluster, plan).start(at=0.0)
                cluster.run_for(0.05)  # let the kill timer fire before driving on
            document_lines.append(f"line-{index} by client")
            begin = time.monotonic()
            result, attempts = cluster.commit_with_retries(
                key, "\n".join(document_lines),
                retries=retries, delay=retry_delay,
            )
            elapsed = time.monotonic() - begin
            total_attempts += attempts
            if result is None:
                failed += 1
                continue
            ok += 1
            latencies.append(elapsed)
            last_ts = max(last_ts, result.ts)
            if nemesis is not None and nemesis.applied:
                post_kill_ok += 1
        wall = time.monotonic() - started
        continuous = cluster.log_is_continuous(key, last_ts) if last_ts else False
        wire = cluster.wire_stats()
        report: dict[str, Any] = {
            "processes": config.processes,
            "peers_per_process": config.peers_per_process,
            "ring_size": len(config.all_peers()),
            "document_key": key,
            "master_peer": placement.master,
            "commits_ok": ok,
            "commits_failed": failed,
            "mean_attempts": round(total_attempts / commits, 2) if commits else 0.0,
            "last_ts": last_ts,
            "wall_clock_s": round(wall, 3),
            "commits_per_s": round(ok / wall, 1) if wall > 0 else 0.0,
            "p50_latency_ms": round(_percentile(latencies, 0.50) * 1000, 1),
            "p95_latency_ms": round(_percentile(latencies, 0.95) * 1000, 1),
            "killed_process": placement.kill_target if kill else None,
            "kill_applied": bool(nemesis is not None and nemesis.applied),
            "post_kill_ok": post_kill_ok,
            "log_continuous": continuous,
            "frames_out": wire["frames_out"],
            "frames_in": wire["frames_in"],
        }
        if nemesis is not None:
            report["nemesis"] = nemesis.record()
        return report
