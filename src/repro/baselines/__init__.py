"""Comparison baselines: centralized reconciler and last-writer-wins replication."""

from .central import CentralClient, CentralReconciler, CentralSystem
from .lww import LwwPeer, LwwRegister, LwwSystem, LwwTag

__all__ = [
    "CentralClient",
    "CentralReconciler",
    "CentralSystem",
    "LwwPeer",
    "LwwRegister",
    "LwwSystem",
    "LwwTag",
]
